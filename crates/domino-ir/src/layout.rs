//! Compile-time field layout: interned fields, flat packets, flat state.
//!
//! The map-based [`Packet`] is the *semantic reference*: a
//! `BTreeMap` from field name to value, convenient and order-deterministic
//! but string-keyed on every access. Real switch pipelines resolve header
//! layouts at compile time — a PHV container is a fixed offset, not a
//! dictionary lookup. This module provides that layout-resolution step:
//!
//! * [`FieldTable`] — an interner assigning every packet field a dense
//!   [`FieldId`] (its PHV slot), keeping reverse names for diagnostics;
//! * [`FlatPacket`] — a fixed `i32` slab keyed by [`FieldId`], with a
//!   presence bitmask replicating the map packet's has/absent semantics;
//! * [`StateLayout`] / [`FlatState`] — every state variable resolved to a
//!   base offset into one flat register file (scalars take one slot,
//!   arrays `size` slots).
//!
//! The slot-compiled execution engine in `banzai` lowers atom pipelines
//! onto these layouts once, then executes packets with pure integer
//! indexing — no per-packet string hashing or tree walks. Differential
//! tests assert the fast path is bit-identical to the map path.
//!
//! The layout is also where **shard-partitionability** is decided:
//! [`StateLayout::flow_key`] inspects how a program indexes its state and,
//! when every access goes through one packet-derived index field, extracts
//! a [`FlowKeySpec`] — the RSS-style steering rule under which per-shard
//! execution is bit-identical to serial execution (see `banzai::shard`).

use crate::packet::Packet;
use crate::state::{StateStore, StateValue};
use crate::tac::{Operand, StateRef, TacStmt};
use domino_ast::{StateKind, StateVar};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// A dense identifier for an interned packet field — the field's slot in a
/// [`FlatPacket`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldId(u32);

impl FieldId {
    /// The slot index this id addresses.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw slot number.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot#{}", self.0)
    }
}

/// An interner mapping packet field names to dense [`FieldId`]s.
///
/// Slots are assigned in first-intern order, so a table built by walking a
/// pipeline deterministically is itself deterministic. The table keeps the
/// reverse mapping (`id → name`) so fast-path diagnostics can still name
/// the field — matching [`Packet::expect`]'s contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FieldTable {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl FieldTable {
    /// An empty table.
    pub fn new() -> Self {
        FieldTable::default()
    }

    /// Interns `name`, returning its (new or existing) [`FieldId`].
    pub fn intern(&mut self, name: &str) -> FieldId {
        if let Some(&id) = self.index.get(name) {
            return FieldId(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        FieldId(id)
    }

    /// Looks up an already-interned field.
    pub fn lookup(&self, name: &str) -> Option<FieldId> {
        self.index.get(name).copied().map(FieldId)
    }

    /// The name behind a [`FieldId`] (reverse mapping, for diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this table.
    pub fn name(&self, id: FieldId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned fields (== the slot count of a [`FlatPacket`]).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no field has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (FieldId(i as u32), n.as_str()))
    }
}

impl fmt::Display for FieldTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, name) in self.iter() {
            writeln!(f, "{id} = pkt.{name}")?;
        }
        Ok(())
    }
}

/// Number of 64-bit words needed for a presence bitmask over `slots` slots.
fn mask_words(slots: usize) -> usize {
    slots.div_ceil(64)
}

/// A packet laid out flat: one `i32` per interned field plus a presence
/// bitmask.
///
/// Invariant: an absent slot always holds 0, so the hot path may read raw
/// slot values directly — `get_or_zero` semantics for free. Presence only
/// matters at the edges ([`FlatPacket::has`], [`FlatPacket::expect`],
/// [`FlatPacket::to_packet`]), exactly like uninitialized PHV containers in
/// a real pipeline reading as zero.
#[derive(Debug, Clone)]
pub struct FlatPacket {
    table: Arc<FieldTable>,
    vals: Box<[i32]>,
    present: Box<[u64]>,
}

impl FlatPacket {
    /// An empty packet over `table`'s layout (all slots absent).
    pub fn new(table: Arc<FieldTable>) -> Self {
        let slots = table.len();
        FlatPacket {
            table,
            vals: vec![0; slots].into_boxed_slice(),
            present: vec![0; mask_words(slots)].into_boxed_slice(),
        }
    }

    /// Converts a map packet onto `table`'s layout.
    ///
    /// Fields of `pkt` not present in the table are *not* representable and
    /// are skipped; callers that must preserve pass-through fields keep the
    /// original packet and merge written slots back (see the slot engine).
    pub fn from_packet(pkt: &Packet, table: &Arc<FieldTable>) -> Self {
        let mut flat = FlatPacket::new(Arc::clone(table));
        for (name, value) in pkt.iter() {
            if let Some(id) = table.lookup(name) {
                flat.set(id, value);
            }
        }
        flat
    }

    /// The layout this packet is keyed by.
    pub fn table(&self) -> &Arc<FieldTable> {
        &self.table
    }

    /// Reads a slot, `None` if no write has marked it present.
    pub fn get(&self, id: FieldId) -> Option<i32> {
        if self.has(id) {
            Some(self.vals[id.index()])
        } else {
            None
        }
    }

    /// Reads a slot, absent slots read as 0 (the hot-path read).
    #[inline]
    pub fn get_or_zero(&self, id: FieldId) -> i32 {
        self.vals[id.index()]
    }

    /// Reads a slot that the execution model guarantees was written.
    ///
    /// # Panics
    ///
    /// Panics with the *field name* (via the table's reverse mapping), not
    /// a bare slot index — same contract as [`Packet::expect`]: a missing
    /// field is a compiler bug and the diagnostic must name it.
    pub fn expect(&self, id: FieldId) -> i32 {
        match self.get(id) {
            Some(v) => v,
            None => panic!(
                "internal error: packet field `{}` ({id}) read before any write; \
                 fields present: [{}]",
                self.table.name(id),
                self.field_names().collect::<Vec<_>>().join(", ")
            ),
        }
    }

    /// True if the slot has been written.
    #[inline]
    pub fn has(&self, id: FieldId) -> bool {
        let i = id.index();
        self.present[i / 64] >> (i % 64) & 1 == 1
    }

    /// Writes a slot and marks it present.
    #[inline]
    pub fn set(&mut self, id: FieldId, value: i32) {
        let i = id.index();
        self.vals[i] = value;
        self.present[i / 64] |= 1 << (i % 64);
    }

    /// Raw value slab (hot-path accessor for the slot engine). Writes via
    /// this slice do *not* update presence; the engine restores the
    /// invariant by OR-ing its static written-slot mask afterwards.
    #[inline]
    pub fn slots_mut(&mut self) -> &mut [i32] {
        &mut self.vals
    }

    /// Raw value slab (read side).
    #[inline]
    pub fn slots(&self) -> &[i32] {
        &self.vals
    }

    /// OR-s a precomputed presence mask into this packet (the engine's
    /// static set of written slots; statements are straight-line, so the
    /// written set per pipeline is a compile-time constant).
    #[inline]
    pub fn mark_present(&mut self, mask: &[u64]) {
        debug_assert_eq!(mask.len(), self.present.len());
        for (word, m) in self.present.iter_mut().zip(mask) {
            *word |= m;
        }
    }

    /// Names of present fields, in slot order.
    pub fn field_names(&self) -> impl Iterator<Item = &str> {
        self.table
            .iter()
            .filter(|(id, _)| self.has(*id))
            .map(|(_, n)| n)
    }

    /// Converts back to a map packet (present fields only).
    pub fn to_packet(&self) -> Packet {
        self.table
            .iter()
            .filter(|(id, _)| self.has(*id))
            .map(|(id, n)| (n.to_string(), self.vals[id.index()]))
            .collect()
    }
}

impl PartialEq for FlatPacket {
    /// Two flat packets are equal when they agree on layout, presence, and
    /// every present value (tables compare by content, so packets from two
    /// identical lowerings compare equal).
    fn eq(&self, other: &Self) -> bool {
        (Arc::ptr_eq(&self.table, &other.table) || self.table == other.table)
            && self.present == other.present
            && self.vals == other.vals
    }
}

impl Eq for FlatPacket {}

/// Where one state variable lives in the flat register file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSlot {
    /// The variable's name (kept for diagnostics and state export).
    pub name: String,
    /// First slot of the variable in the register file.
    pub base: u32,
    /// Number of slots (1 for a scalar, the array size otherwise).
    pub len: u32,
    /// True if the variable is a register array.
    pub is_array: bool,
    /// Initial value of every slot.
    pub init: i32,
}

/// The compile-time layout of all state variables: each resolved to a base
/// offset into one flat `i32` register file, in declaration order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateLayout {
    entries: Vec<StateSlot>,
    total: u32,
}

impl StateLayout {
    /// Builds the layout from checked state declarations.
    pub fn from_decls(decls: &[StateVar]) -> Self {
        let mut entries = Vec::with_capacity(decls.len());
        let mut total = 0u32;
        for d in decls {
            let (len, is_array) = match d.kind {
                StateKind::Scalar => (1, false),
                StateKind::Array { size } => (size, true),
            };
            entries.push(StateSlot {
                name: d.name.clone(),
                base: total,
                len,
                is_array,
                init: d.init,
            });
            total += len;
        }
        StateLayout { entries, total }
    }

    /// The layout entry for a variable, if declared.
    pub fn slot(&self, name: &str) -> Option<&StateSlot> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Total register-file slots.
    pub fn total_slots(&self) -> usize {
        self.total as usize
    }

    /// All entries in declaration (base-offset) order.
    pub fn entries(&self) -> &[StateSlot] {
        &self.entries
    }
}

impl fmt::Display for StateLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            if e.is_array {
                writeln!(
                    f,
                    "state[{}..{}] = {}[{}]",
                    e.base,
                    e.base + e.len,
                    e.name,
                    e.len
                )?;
            } else {
                writeln!(f, "state[{}] = {}", e.base, e.name)?;
            }
        }
        Ok(())
    }
}

/// All state variables of a program as one flat register file.
///
/// Array indexing wraps modulo the array size with the same `rem_euclid`
/// rule as [`StateStore`] — the two representations are observably
/// identical, which [`FlatState::export`] lets tests assert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatState {
    layout: StateLayout,
    slots: Box<[i32]>,
}

impl FlatState {
    /// Initializes the register file from a layout (every slot of a
    /// variable starts at the variable's initializer).
    pub fn new(layout: StateLayout) -> Self {
        let mut slots = vec![0; layout.total_slots()].into_boxed_slice();
        for e in layout.entries() {
            for s in &mut slots[e.base as usize..(e.base + e.len) as usize] {
                *s = e.init;
            }
        }
        FlatState { layout, slots }
    }

    /// The layout this register file was built from.
    pub fn layout(&self) -> &StateLayout {
        &self.layout
    }

    /// Reads the scalar at `base`.
    #[inline]
    pub fn read(&self, base: u32) -> i32 {
        self.slots[base as usize]
    }

    /// Writes the scalar at `base`.
    #[inline]
    pub fn write(&mut self, base: u32, value: i32) {
        self.slots[base as usize] = value;
    }

    /// Reads an array element (index reduced modulo `len`, like a hardware
    /// address decoder — identical to [`StateStore`]'s rule).
    #[inline]
    pub fn read_array(&self, base: u32, len: u32, index: i32) -> i32 {
        self.slots[base as usize + Self::wrap(index, len)]
    }

    /// Writes an array element (index reduced modulo `len`).
    #[inline]
    pub fn write_array(&mut self, base: u32, len: u32, index: i32, value: i32) {
        self.slots[base as usize + Self::wrap(index, len)] = value;
    }

    #[inline]
    fn wrap(index: i32, len: u32) -> usize {
        (index as i64).rem_euclid(len as i64) as usize
    }

    /// Imports variables from a map snapshot — the inverse of
    /// [`FlatState::export`], used to warm-start a partition from a serial
    /// checkpoint.
    ///
    /// Variables of the snapshot missing from this layout, or arrays whose
    /// sizes disagree, indicate a partitioning bug upstream.
    ///
    /// # Panics
    ///
    /// Panics if a snapshot variable is unknown to the layout or has the
    /// wrong kind/size.
    pub fn import(&mut self, snapshot: &StateStore) {
        for (name, value) in snapshot.iter() {
            let (base, len, is_array) = {
                let e = self
                    .layout
                    .slot(name)
                    .unwrap_or_else(|| panic!("internal error: unknown state variable `{name}`"));
                (e.base as usize, e.len as usize, e.is_array)
            };
            match value {
                StateValue::Scalar(v) if !is_array => self.slots[base] = *v,
                StateValue::Array(vs) if is_array && vs.len() == len => {
                    self.slots[base..base + len].copy_from_slice(vs);
                }
                _ => panic!("internal error: state variable `{name}` has the wrong shape"),
            }
        }
    }

    /// Exports the register file as a map-based [`StateStore`] for
    /// comparison against the reference path.
    pub fn export(&self) -> StateStore {
        let mut store = StateStore::new();
        for e in self.layout.entries() {
            let window = &self.slots[e.base as usize..(e.base + e.len) as usize];
            if e.is_array {
                store.insert_array(&e.name, e.len as usize, 0);
                // insert_array fills with one init value; overwrite with
                // the live contents.
                for (i, v) in window.iter().enumerate() {
                    store.write_array(&e.name, i as i32, *v);
                }
            } else {
                store.insert_scalar(&e.name, window[0]);
            }
        }
        store
    }
}

impl fmt::Display for FlatState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.export())
    }
}

/// How a program's state indexing partitions across parallel shards.
///
/// Extracted by [`StateLayout::flow_key`]. `Keyed` is the software
/// analogue of the paper's stateful-atom locality argument: all persistent
/// state is per-flow (indexed by one packet-derived key), so flows can be
/// steered to independent shards with no cross-shard coordination — the
/// same partitioning RSS NICs and multi-pipeline P4 targets rely on.
#[derive(Debug, Clone, PartialEq)]
pub enum Partitionability {
    /// The program touches no persistent state: any flow-consistent
    /// steering reproduces serial execution.
    Stateless,
    /// Every state access is an array access through one common index
    /// field; the extracted spec steers packets so that packets that can
    /// touch the same state slot always land on the same shard.
    Keyed(FlowKeySpec),
}

impl fmt::Display for Partitionability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Partitionability::Stateless => {
                writeln!(
                    f,
                    "stateless: no persistent state, any flow steering is sound"
                )
            }
            Partitionability::Keyed(spec) => write!(f, "{spec}"),
        }
    }
}

/// The flow key a shard-partitionable program steers by.
///
/// Invariant (established by [`StateLayout::flow_key`]): two packets that
/// can read or write a common state slot have equal keys. The key is the
/// program's own array-index value reduced modulo the gcd of every
/// accessed array's size — equal slots imply congruent indices, congruent
/// indices imply equal keys — and it is computed by a *stateless*
/// straight-line slice of the program, so a dispatcher can evaluate it
/// before any pipeline runs.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowKeySpec {
    /// Stateless slice computing `key_field` from input fields, in
    /// program order.
    stmts: Vec<TacStmt>,
    /// The common index field whose value (mod `modulus`) is the key.
    key_field: String,
    /// gcd of the sizes of every array the program indexes.
    modulus: u32,
    /// Input fields the key depends on (the slice's free variables).
    roots: Vec<String>,
}

impl FlowKeySpec {
    /// The field whose value the key is derived from.
    pub fn key_field(&self) -> &str {
        &self.key_field
    }

    /// Number of key classes (gcd of all accessed array sizes).
    pub fn modulus(&self) -> u32 {
        self.modulus
    }

    /// The input fields the key depends on.
    pub fn roots(&self) -> &[String] {
        &self.roots
    }

    /// The stateless slice that computes the key field.
    pub fn stmts(&self) -> &[TacStmt] {
        &self.stmts
    }

    /// Evaluates the key of an input packet by running the stateless slice
    /// and reducing the key field modulo [`FlowKeySpec::modulus`].
    ///
    /// Only the root fields are copied into the evaluation scratch — this
    /// runs once per packet on the dispatcher's hot path. (The scratch is
    /// still a fresh map packet per call; when the steering lane becomes
    /// the critical path at high shard counts, the next step is lowering
    /// the slice onto a slot layout like the execution engine does.)
    pub fn key_of(&self, pkt: &Packet) -> u32 {
        let mut scratch = Packet::new();
        for root in &self.roots {
            if let Some(v) = pkt.get(root) {
                scratch.set(root, v);
            }
        }
        // The slice is stateless by construction; the store is never read.
        let mut no_state = StateStore::new();
        for stmt in &self.stmts {
            crate::interp::exec_tac_stmt(stmt, &mut no_state, &mut scratch);
        }
        (scratch.get_or_zero(&self.key_field) as i64).rem_euclid(self.modulus as i64) as u32
    }

    /// The shard an input packet steers to.
    pub fn shard_of(&self, pkt: &Packet, shards: usize) -> usize {
        FlowKeySpec::shard_of_class(self.key_of(pkt), shards)
    }

    /// The shard that owns a key class. Array slot `k` of any accessed
    /// array belongs to class `k % modulus`, so this is also the state
    /// partition: only the owning shard ever touches that slot.
    pub fn shard_of_class(class: u32, shards: usize) -> usize {
        if shards <= 1 {
            return 0;
        }
        (mix64(class as u64) % shards as u64) as usize
    }
}

impl fmt::Display for FlowKeySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "flow key = pkt.{} mod {}", self.key_field, self.modulus)?;
        writeln!(f, "roots: {}", self.roots.join(", "))?;
        if !self.stmts.is_empty() {
            writeln!(f, "slice:")?;
            for s in &self.stmts {
                writeln!(f, "  {s}")?;
            }
        }
        Ok(())
    }
}

/// SplitMix64 finalizer: spreads key classes uniformly over shards so
/// steering stays balanced even when keys cluster. Deterministic across
/// runs and platforms (steering must be reproducible).
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl StateLayout {
    /// Decides whether a program's state indexing is shard-partitionable,
    /// and extracts the [`FlowKeySpec`] witnessing it.
    ///
    /// `stmts` is the program's straight-line TAC in execution order (for
    /// a compiled pipeline: every atom's codelet, stage by stage). The
    /// rule:
    ///
    /// * **scalar state** is a global register every packet read-modify-
    ///   writes — not partitionable (e.g. `rcp.domino`);
    /// * **array state** must be indexed by *one* common packet field
    ///   across all accesses (e.g. `flowlet.domino`'s `pkt.id`); arrays
    ///   indexed by distinct hash fields couple packets through slot
    ///   collisions (e.g. `heavy_hitters.domino`'s three sketch rows);
    /// * the index field's computation must be a **stateless** slice of
    ///   the program (a dispatcher steers *before* execution);
    /// * the key is the index reduced modulo the **gcd of the array
    ///   sizes**, so congruent indices — the only ones that can alias a
    ///   slot — share a key class.
    ///
    /// Errors carry the human-readable reason, which `banzai`'s sharded
    /// switch surfaces as its single-shard fallback diagnostic.
    pub fn flow_key(&self, stmts: &[TacStmt]) -> Result<Partitionability, String> {
        let mut index_fields: BTreeSet<&str> = BTreeSet::new();
        let mut modulus = 0u32;
        for stmt in stmts {
            let sref = match stmt {
                TacStmt::ReadState { state, .. } | TacStmt::WriteState { state, .. } => state,
                TacStmt::Assign { .. } => continue,
            };
            let entry = self
                .slot(sref.name())
                .ok_or_else(|| format!("state variable `{}` is not declared", sref.name()))?;
            match sref {
                StateRef::Scalar(name) => {
                    return Err(format!(
                        "scalar state `{name}` is a global register (every packet \
                         read-modify-writes it); no flow steering preserves serial \
                         semantics"
                    ));
                }
                StateRef::Array { name, index } => match index {
                    Operand::Const(c) => {
                        return Err(format!(
                            "array `{name}` is indexed by the constant {c}; every \
                             packet touches the same slot"
                        ));
                    }
                    Operand::Field(f) => {
                        index_fields.insert(f);
                        modulus = gcd(modulus, entry.len);
                    }
                },
            }
        }

        if index_fields.is_empty() {
            return Ok(Partitionability::Stateless);
        }
        if index_fields.len() > 1 {
            let fields: Vec<&str> = index_fields.into_iter().collect();
            return Err(format!(
                "state arrays are indexed by {} distinct fields (`{}`); packets \
                 couple through slot collisions, so no single flow key covers them",
                fields.len(),
                fields.join("`, `")
            ));
        }
        if modulus <= 1 {
            return Err(
                "the accessed arrays' sizes share no common factor; the flow key \
                 has a single class"
                    .to_string(),
            );
        }
        let key_field = index_fields.into_iter().next().unwrap().to_string();

        // The key field must be defined before any state access indexes
        // by it: an access upstream of the assignment would index by the
        // field's *input* value while the extracted slice computes the
        // assigned value — two different partitions in one pipeline.
        // (Compiler-emitted TAC is SSA, so this only bites hand-built
        // pipelines — but those reach this API too.)
        if let Some(def_pos) = stmts
            .iter()
            .position(|s| matches!(s, TacStmt::Assign { dst, .. } if *dst == key_field))
        {
            let early_access = stmts[..def_pos].iter().any(|s| {
                matches!(s,
                    TacStmt::ReadState { state, .. } | TacStmt::WriteState { state, .. }
                        if matches!(state, StateRef::Array { index: Operand::Field(f), .. }
                            if *f == key_field))
            });
            if early_access {
                return Err(format!(
                    "state is accessed through `{key_field}` before that field is \
                     assigned; the flow key has no single pre-execution value"
                ));
            }
        }

        // Backward slice of the key field over stateless assignments.
        let mut defs: HashMap<&str, usize> = HashMap::new();
        for stmt in stmts {
            match stmt {
                TacStmt::Assign { dst, .. } | TacStmt::ReadState { dst, .. } => {
                    *defs.entry(dst.as_str()).or_insert(0) += 1;
                }
                TacStmt::WriteState { .. } => {}
            }
        }
        let mut need: BTreeSet<String> = BTreeSet::new();
        need.insert(key_field.clone());
        let mut slice: Vec<TacStmt> = Vec::new();
        for stmt in stmts.iter().rev() {
            match stmt {
                TacStmt::Assign { dst, rhs } if need.contains(dst.as_str()) => {
                    if defs.get(dst.as_str()).copied().unwrap_or(0) > 1 {
                        return Err(format!(
                            "field `{dst}` feeding the flow key is assigned more \
                             than once; the key has no unique pre-execution value"
                        ));
                    }
                    need.remove(dst.as_str());
                    for op in rhs.operands() {
                        if let Operand::Field(f) = op {
                            need.insert(f.clone());
                        }
                    }
                    slice.push(stmt.clone());
                }
                TacStmt::ReadState { dst, state } if need.contains(dst.as_str()) => {
                    return Err(format!(
                        "the flow key depends on state `{}` (via field `{dst}`); \
                         it cannot be computed before execution",
                        state.name()
                    ));
                }
                _ => {}
            }
        }
        slice.reverse();
        let roots: Vec<String> = need.into_iter().collect();
        Ok(Partitionability::Keyed(FlowKeySpec {
            stmts: slice,
            key_field,
            modulus,
            roots,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_abc() -> Arc<FieldTable> {
        let mut t = FieldTable::new();
        t.intern("a");
        t.intern("b");
        t.intern("c");
        Arc::new(t)
    }

    #[test]
    fn interning_is_dense_and_idempotent() {
        let mut t = FieldTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(t.intern("a"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), "a");
        assert_eq!(t.lookup("b"), Some(b));
        assert_eq!(t.lookup("ghost"), None);
    }

    #[test]
    fn flat_packet_roundtrips_through_map_packet() {
        let table = table_abc();
        let pkt = Packet::new().with("a", 5).with("c", -2);
        let flat = FlatPacket::from_packet(&pkt, &table);
        assert_eq!(flat.get(table.lookup("a").unwrap()), Some(5));
        assert_eq!(flat.get(table.lookup("b").unwrap()), None);
        assert_eq!(flat.get_or_zero(table.lookup("b").unwrap()), 0);
        assert_eq!(flat.to_packet(), pkt);
    }

    #[test]
    fn absent_slots_read_zero_until_masked_present() {
        let table = table_abc();
        let mut flat = FlatPacket::new(Arc::clone(&table));
        let b = table.lookup("b").unwrap();
        flat.slots_mut()[b.index()] = 7; // raw engine write, no presence
        assert!(!flat.has(b));
        assert_eq!(flat.get_or_zero(b), 7);
        let mut mask = vec![0u64; 1];
        mask[0] |= 1 << b.index();
        flat.mark_present(&mask);
        assert!(flat.has(b));
        assert_eq!(flat.to_packet().get("b"), Some(7));
    }

    #[test]
    #[should_panic(expected = "packet field `b` (slot#1) read before any write")]
    fn expect_panics_with_field_name_not_bare_index() {
        let table = table_abc();
        let mut flat = FlatPacket::new(Arc::clone(&table));
        flat.set(table.lookup("a").unwrap(), 1);
        flat.expect(table.lookup("b").unwrap());
    }

    #[test]
    fn state_layout_assigns_contiguous_bases() {
        let decls = vec![
            StateVar {
                name: "c".into(),
                kind: StateKind::Scalar,
                init: 7,
            },
            StateVar {
                name: "arr".into(),
                kind: StateKind::Array { size: 4 },
                init: -1,
            },
            StateVar {
                name: "d".into(),
                kind: StateKind::Scalar,
                init: 0,
            },
        ];
        let layout = StateLayout::from_decls(&decls);
        assert_eq!(layout.total_slots(), 6);
        assert_eq!(layout.slot("c").unwrap().base, 0);
        assert_eq!(layout.slot("arr").unwrap().base, 1);
        assert_eq!(layout.slot("arr").unwrap().len, 4);
        assert_eq!(layout.slot("d").unwrap().base, 5);
        assert!(layout.slot("ghost").is_none());
    }

    #[test]
    fn flat_state_matches_state_store_semantics() {
        let decls = vec![
            StateVar {
                name: "c".into(),
                kind: StateKind::Scalar,
                init: 7,
            },
            StateVar {
                name: "arr".into(),
                kind: StateKind::Array { size: 4 },
                init: -1,
            },
        ];
        let mut flat = FlatState::new(StateLayout::from_decls(&decls));
        let mut store = StateStore::from_decls(&decls);

        let arr = flat.layout().slot("arr").unwrap().clone();
        let c = flat.layout().slot("c").unwrap().clone();
        assert_eq!(flat.read(c.base), 7);
        flat.write(c.base, 42);
        store.write_scalar("c", 42);
        // Wrapping behaviour must match rem_euclid on both sides.
        for idx in [0, 2, 6, -1] {
            flat.write_array(arr.base, arr.len, idx, 10 + idx);
            store.write_array("arr", idx, 10 + idx);
        }
        assert_eq!(flat.export(), store);
    }

    #[test]
    fn flat_state_import_roundtrips_export() {
        let decls = vec![
            StateVar {
                name: "c".into(),
                kind: StateKind::Scalar,
                init: 7,
            },
            StateVar {
                name: "arr".into(),
                kind: StateKind::Array { size: 4 },
                init: -1,
            },
        ];
        let mut a = FlatState::new(StateLayout::from_decls(&decls));
        a.write(0, 42);
        a.write_array(1, 4, 3, 9);
        let mut b = FlatState::new(StateLayout::from_decls(&decls));
        b.import(&a.export());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "unknown state variable `ghost`")]
    fn flat_state_import_rejects_unknown_variables() {
        let mut flat = FlatState::new(StateLayout::from_decls(&[]));
        let mut snap = StateStore::new();
        snap.insert_scalar("ghost", 1);
        flat.import(&snap);
    }

    // --- flow-key extraction -------------------------------------------

    use crate::tac::{Operand, StateRef, TacRhs, TacStmt};

    fn arr_decl(name: &str, size: u32) -> StateVar {
        StateVar {
            name: name.into(),
            kind: StateKind::Array { size },
            init: 0,
        }
    }

    /// `pkt.idx = pkt.sport % 8; a[pkt.idx] read+write` — partitionable.
    fn keyed_stmts() -> Vec<TacStmt> {
        vec![
            TacStmt::Assign {
                dst: "idx".into(),
                rhs: TacRhs::Binary(
                    domino_ast::BinOp::Mod,
                    Operand::Field("sport".into()),
                    Operand::Const(8),
                ),
            },
            TacStmt::ReadState {
                dst: "old".into(),
                state: StateRef::Array {
                    name: "a".into(),
                    index: Operand::Field("idx".into()),
                },
            },
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "a".into(),
                    index: Operand::Field("idx".into()),
                },
                src: Operand::Field("old".into()),
            },
        ]
    }

    #[test]
    fn flow_key_extracts_single_index_field() {
        let layout = StateLayout::from_decls(&[arr_decl("a", 8)]);
        let part = layout.flow_key(&keyed_stmts()).unwrap();
        let Partitionability::Keyed(spec) = part else {
            panic!("expected Keyed, got {part:?}");
        };
        assert_eq!(spec.key_field(), "idx");
        assert_eq!(spec.modulus(), 8);
        assert_eq!(spec.roots(), ["sport".to_string()]);
        assert_eq!(spec.stmts().len(), 1); // just the idx assignment
                                           // Keys follow the program's own index arithmetic.
        let k = spec.key_of(&Packet::new().with("sport", 13));
        assert_eq!(k, 5);
        // Equal keys steer to equal shards; classes cover all shards' ids.
        assert_eq!(
            spec.shard_of(&Packet::new().with("sport", 13), 4),
            FlowKeySpec::shard_of_class(5, 4)
        );
        assert!(spec.to_string().contains("flow key = pkt.idx mod 8"));
    }

    #[test]
    fn flow_key_modulus_is_gcd_of_array_sizes() {
        let layout = StateLayout::from_decls(&[arr_decl("a", 8), arr_decl("b", 12)]);
        let mut stmts = keyed_stmts();
        stmts.push(TacStmt::WriteState {
            state: StateRef::Array {
                name: "b".into(),
                index: Operand::Field("idx".into()),
            },
            src: Operand::Const(1),
        });
        let Partitionability::Keyed(spec) = layout.flow_key(&stmts).unwrap() else {
            panic!("expected Keyed");
        };
        assert_eq!(spec.modulus(), 4); // gcd(8, 12)
    }

    #[test]
    fn flow_key_rejects_scalars_and_multi_field_indexing() {
        let layout = StateLayout::from_decls(&[
            arr_decl("a", 8),
            arr_decl("b", 8),
            StateVar {
                name: "s".into(),
                kind: StateKind::Scalar,
                init: 0,
            },
        ]);
        // Scalar access: global register.
        let err = layout
            .flow_key(&[TacStmt::WriteState {
                state: StateRef::Scalar("s".into()),
                src: Operand::Const(1),
            }])
            .unwrap_err();
        assert!(err.contains("scalar state `s`"), "{err}");
        // Two arrays indexed by different fields: slot-collision coupling.
        let mut stmts = keyed_stmts();
        stmts.push(TacStmt::WriteState {
            state: StateRef::Array {
                name: "b".into(),
                index: Operand::Field("other".into()),
            },
            src: Operand::Const(1),
        });
        let err = layout.flow_key(&stmts).unwrap_err();
        assert!(err.contains("distinct fields"), "{err}");
        // Constant index: one slot shared by everyone.
        let err = layout
            .flow_key(&[TacStmt::WriteState {
                state: StateRef::Array {
                    name: "a".into(),
                    index: Operand::Const(3),
                },
                src: Operand::Const(1),
            }])
            .unwrap_err();
        assert!(err.contains("constant 3"), "{err}");
    }

    #[test]
    fn flow_key_rejects_state_dependent_index() {
        let layout = StateLayout::from_decls(&[arr_decl("a", 8)]);
        let stmts = vec![
            TacStmt::ReadState {
                dst: "idx".into(),
                state: StateRef::Array {
                    name: "a".into(),
                    index: Operand::Field("idx".into()),
                },
            },
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "a".into(),
                    index: Operand::Field("idx".into()),
                },
                src: Operand::Const(1),
            },
        ];
        let err = layout.flow_key(&stmts).unwrap_err();
        assert!(err.contains("depends on state"), "{err}");
    }

    #[test]
    fn flow_key_rejects_state_access_before_key_definition() {
        // a[idx] is read while `idx` still holds its input value; the
        // assignment below would give the slice a different key.
        let layout = StateLayout::from_decls(&[arr_decl("a", 8)]);
        let stmts = vec![
            TacStmt::ReadState {
                dst: "old".into(),
                state: StateRef::Array {
                    name: "a".into(),
                    index: Operand::Field("idx".into()),
                },
            },
            TacStmt::Assign {
                dst: "idx".into(),
                rhs: TacRhs::Binary(
                    domino_ast::BinOp::Mod,
                    Operand::Field("sport".into()),
                    Operand::Const(8),
                ),
            },
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "a".into(),
                    index: Operand::Field("idx".into()),
                },
                src: Operand::Field("old".into()),
            },
        ];
        let err = layout.flow_key(&stmts).unwrap_err();
        assert!(err.contains("before that field is assigned"), "{err}");
    }

    #[test]
    fn flow_key_stateless_when_no_state_touched() {
        let layout = StateLayout::from_decls(&[arr_decl("a", 8)]);
        let part = layout
            .flow_key(&[TacStmt::Assign {
                dst: "x".into(),
                rhs: TacRhs::Copy(Operand::Const(1)),
            }])
            .unwrap();
        assert_eq!(part, Partitionability::Stateless);
    }

    #[test]
    fn mix64_spreads_consecutive_classes() {
        // Consecutive keys should not all collapse onto one shard.
        let shards: BTreeSet<usize> = (0..16u32)
            .map(|k| FlowKeySpec::shard_of_class(k, 4))
            .collect();
        assert!(shards.len() > 1, "{shards:?}");
    }

    #[test]
    fn flat_packet_equality_compares_layout_and_contents() {
        let table = table_abc();
        let p1 = FlatPacket::from_packet(&Packet::new().with("a", 1), &table);
        let p2 = FlatPacket::from_packet(&Packet::new().with("a", 1), &table);
        let p3 = FlatPacket::from_packet(&Packet::new().with("a", 2), &table);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        // Same content, different (but equal) table instances.
        let other = Arc::new((*table).clone());
        let p4 = FlatPacket::from_packet(&Packet::new().with("a", 1), &other);
        assert_eq!(p1, p4);
    }
}
