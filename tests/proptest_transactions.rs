//! Property-based compiler fuzzing.
//!
//! Generates random (but valid) Domino packet transactions — straight-line
//! field arithmetic, guarded scalar/array state updates — compiles them
//! for the most expressive Banzai target, and checks the paper's central
//! theorem on random traces:
//!
//! > any visible state is equivalent to a serial execution of packet
//! > transactions across packets (§1)
//!
//! i.e. compiled-pipeline output ≡ sequential interpretation, in both the
//! one-packet-at-a-time and the cycle-accurate packets-in-flight modes.

use banzai::{AtomKind, Machine, SlotMachine, Target};
use domino_ir::{run_ast, Packet, StateStore};
use proptest::prelude::*;

/// Number of input fields every generated program declares.
const NUM_INPUTS: usize = 4;
/// Array size for the generated array state variable.
const ARRAY_SIZE: usize = 16;

/// A value operand available at a given point of the program.
#[derive(Debug, Clone)]
enum GenOperand {
    Input(usize),
    Temp(usize),
    Const(i32),
}

impl GenOperand {
    fn render(&self) -> String {
        match self {
            GenOperand::Input(i) => format!("pkt.in{i}"),
            GenOperand::Temp(i) => format!("pkt.t{i}"),
            GenOperand::Const(c) => format!("{c}"),
        }
    }
}

/// A small pure expression over available operands.
#[derive(Debug, Clone)]
enum GenExpr {
    Op(GenOperand),
    Bin(&'static str, GenOperand, GenOperand),
    Tern(GenOperand, GenOperand, GenOperand),
}

impl GenExpr {
    fn render(&self) -> String {
        match self {
            GenExpr::Op(o) => o.render(),
            GenExpr::Bin(op, a, b) => format!("{} {op} {}", a.render(), b.render()),
            GenExpr::Tern(c, a, b) => {
                format!("{} ? {} : {}", c.render(), a.render(), b.render())
            }
        }
    }
}

/// A state update in atom-friendly form.
#[derive(Debug, Clone)]
enum GenUpdate {
    Write(GenOperand),
    Add(GenOperand),
    Sub(GenOperand),
}

impl GenUpdate {
    fn render(&self, lhs: &str) -> String {
        match self {
            GenUpdate::Write(o) => format!("{lhs} = {};", o.render()),
            GenUpdate::Add(o) => format!("{lhs} = {lhs} + {};", o.render()),
            GenUpdate::Sub(o) => format!("{lhs} = {lhs} - {};", o.render()),
        }
    }
}

/// One generated statement.
#[derive(Debug, Clone)]
enum GenStmt {
    /// `pkt.t<n> = expr;` (n = next fresh temp)
    Field(GenExpr),
    /// optionally-guarded update of scalar `s<var>` or `arr[pkt.idx]`.
    State {
        array: bool,
        var: usize,
        update: GenUpdate,
        else_update: Option<GenUpdate>,
        guard: Option<GenExpr>,
    },
}

fn operand_strategy(temps: usize) -> impl Strategy<Value = GenOperand> {
    let mut opts = vec![
        (4, (0..NUM_INPUTS).prop_map(GenOperand::Input).boxed()),
        (2, (-20i32..20).prop_map(GenOperand::Const).boxed()),
    ];
    if temps > 0 {
        opts.push((3, (0..temps).prop_map(GenOperand::Temp).boxed()));
    }
    proptest::strategy::Union::new_weighted(opts)
}

fn expr_strategy(temps: usize) -> impl Strategy<Value = GenExpr> {
    let ops = prop_oneof![
        Just("+"),
        Just("-"),
        Just("&"),
        Just("|"),
        Just("^"),
        Just("<"),
        Just(">"),
        Just("=="),
        Just("!="),
        Just(">>"),
        Just("<<"),
    ];
    prop_oneof![
        2 => operand_strategy(temps).prop_map(GenExpr::Op),
        4 => (ops, operand_strategy(temps), operand_strategy(temps))
            .prop_map(|(op, a, b)| GenExpr::Bin(op, a, b)),
        1 => (operand_strategy(temps), operand_strategy(temps), operand_strategy(temps))
            .prop_map(|(c, a, b)| GenExpr::Tern(c, a, b)),
    ]
}

fn update_strategy(temps: usize) -> impl Strategy<Value = GenUpdate> {
    prop_oneof![
        operand_strategy(temps).prop_map(GenUpdate::Write),
        operand_strategy(temps).prop_map(GenUpdate::Add),
        operand_strategy(temps).prop_map(GenUpdate::Sub),
    ]
}

/// Generates a whole program: a statement plan where statement `i` may use
/// temps defined by statements `0..i`.
fn program_strategy() -> impl Strategy<Value = Vec<GenStmt>> {
    // Fixed shape: up to 8 statements; temp k is defined by the k-th
    // Field statement.
    proptest::collection::vec(any::<u8>(), 1..8).prop_flat_map(|shape| {
        let mut strategies: Vec<BoxedStrategy<GenStmt>> = Vec::new();
        let mut temps = 0usize;
        for tag in shape {
            match tag % 3 {
                0 => {
                    let s = expr_strategy(temps).prop_map(GenStmt::Field).boxed();
                    strategies.push(s);
                    temps += 1;
                }
                _ => {
                    let s = (
                        any::<bool>(),
                        0..2usize,
                        update_strategy(temps),
                        proptest::option::of(update_strategy(temps)),
                        proptest::option::of(expr_strategy(temps)),
                    )
                        .prop_map(|(array, var, update, else_update, guard)| GenStmt::State {
                            array,
                            var,
                            update,
                            else_update: if guard.is_some() { else_update } else { None },
                            guard,
                        })
                        .boxed();
                    strategies.push(s);
                }
            }
        }
        strategies
    })
}

/// Renders the plan to Domino source. Each array variable is indexed by a
/// dedicated input-derived field computed up front (Table 1 rule).
fn render(stmts: &[GenStmt]) -> String {
    let mut src = String::new();
    src.push_str("struct Packet {\n");
    for i in 0..NUM_INPUTS {
        src.push_str(&format!("  int in{i};\n"));
    }
    src.push_str("  int idx;\n");
    let temps = stmts
        .iter()
        .filter(|s| matches!(s, GenStmt::Field(_)))
        .count();
    for i in 0..temps {
        src.push_str(&format!("  int t{i};\n"));
    }
    src.push_str("};\n");
    src.push_str("int s0 = 0;\nint s1 = 5;\n");
    src.push_str(&format!("int arr0[{ARRAY_SIZE}] = {{0}};\n"));
    src.push_str(&format!("int arr1[{ARRAY_SIZE}] = {{1}};\n"));
    src.push_str("void generated(struct Packet pkt) {\n");
    src.push_str(&format!("  pkt.idx = pkt.in0 & {};\n", ARRAY_SIZE - 1));
    let mut temp = 0;
    for s in stmts {
        match s {
            GenStmt::Field(e) => {
                src.push_str(&format!("  pkt.t{temp} = {};\n", e.render()));
                temp += 1;
            }
            GenStmt::State {
                array,
                var,
                update,
                else_update,
                guard,
            } => {
                let lhs = if *array {
                    format!("arr{var}[pkt.idx]")
                } else {
                    format!("s{var}")
                };
                match guard {
                    None => src.push_str(&format!("  {}\n", update.render(&lhs))),
                    Some(g) => {
                        src.push_str(&format!("  if ({}) {{\n", g.render()));
                        src.push_str(&format!("    {}\n", update.render(&lhs)));
                        src.push_str("  }");
                        if let Some(e) = else_update {
                            src.push_str(" else {\n");
                            src.push_str(&format!("    {}\n", e.render(&lhs)));
                            src.push_str("  }");
                        }
                        src.push('\n');
                    }
                }
            }
        }
    }
    src.push_str("}\n");
    src
}

fn trace_strategy() -> impl Strategy<Value = Vec<Vec<i32>>> {
    proptest::collection::vec(proptest::collection::vec(-100i32..100, NUM_INPUTS), 1..60)
}

fn to_packets(rows: &[Vec<i32>], temps: usize) -> Vec<Packet> {
    rows.iter()
        .map(|row| {
            let mut p = Packet::new();
            for (i, v) in row.iter().enumerate() {
                p.set(&format!("in{i}"), *v);
            }
            p.set("idx", 0);
            for t in 0..temps {
                p.set(&format!("t{t}"), 0);
            }
            p
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline property: for any generated transaction that the
    /// all-or-nothing compiler accepts, the compiled pipeline's observable
    /// behaviour equals serial execution — in both execution modes — and
    /// final state matches exactly.
    #[test]
    fn compiled_pipeline_equals_serial_semantics(
        stmts in program_strategy(),
        rows in trace_strategy(),
    ) {
        let src = render(&stmts);
        let checked = domino_ast::parse_and_check(&src)
            .unwrap_or_else(|e| panic!("generated program must check: {e}\n{src}"));

        // Compilation may legitimately reject (e.g. an update whose
        // operand chain exceeds single-ALU form) — all-or-nothing. Only
        // accepted programs are executed.
        let target = Target::banzai(AtomKind::Pairs);
        let Ok(pipeline) = domino_compiler::compile(&src, &target) else {
            return Ok(());
        };

        let temps = stmts.iter().filter(|s| matches!(s, GenStmt::Field(_))).count();
        let trace = to_packets(&rows, temps);

        let mut interp_state = StateStore::from_decls(&checked.state);
        let expected = run_ast(&checked, &mut interp_state, &trace);

        let mut m1 = Machine::new(pipeline.clone());
        let got_serial = m1.run_trace(&trace);
        let mut m2 = Machine::new(pipeline);
        let got_pipelined = m2.run_trace_pipelined(&trace);

        let fields = checked.packet_fields.clone();
        for (i, ((e, g), gp)) in
            expected.iter().zip(&got_serial).zip(&got_pipelined).enumerate()
        {
            prop_assert_eq!(
                e.project(&fields), g.project(&fields),
                "serial mismatch at packet {} for program:\n{}", i, src
            );
            prop_assert_eq!(
                g.project(&fields), gp.project(&fields),
                "pipelined mismatch at packet {} for program:\n{}", i, src
            );
        }
        prop_assert_eq!(m1.state(), &interp_state, "state mismatch:\n{}", src);
        prop_assert_eq!(m2.state(), &interp_state, "pipelined state mismatch:\n{}", src);
    }

    /// The paper's core guarantee, preserved on the new engine: for any
    /// generated transaction, slot-compiled *pipelined* execution (up to
    /// `depth` packets in flight, interned fields, flat state) is
    /// bit-identical to map-based *sequential* execution — full packets
    /// and exported state.
    #[test]
    fn slot_pipelined_equals_map_serial(
        stmts in program_strategy(),
        rows in trace_strategy(),
    ) {
        let src = render(&stmts);
        let target = Target::banzai(AtomKind::Pairs);
        let Ok(pipeline) = domino_compiler::compile(&src, &target) else {
            return Ok(());
        };

        let temps = stmts.iter().filter(|s| matches!(s, GenStmt::Field(_))).count();
        let trace = to_packets(&rows, temps);

        let mut map_machine = Machine::new(pipeline.clone());
        let map_serial = map_machine.run_trace(&trace);

        let mut slot_machine = SlotMachine::compile(&pipeline)
            .unwrap_or_else(|e| panic!("slot lowering failed: {e}\n{src}"));
        let slot_pipelined = slot_machine.run_trace_pipelined(&trace);

        prop_assert_eq!(
            &map_serial, &slot_pipelined,
            "slot pipelined vs map serial diverged for program:\n{}", src
        );
        prop_assert_eq!(
            map_machine.state(), &slot_machine.export_state(),
            "slot pipelined state diverged for program:\n{}", src
        );
    }

    /// Flow-steered sharding is invisible: for any generated transaction
    /// and any shard count, each shard's output subsequence equals the
    /// single-threaded slot engine's outputs at the positions steered to
    /// that shard, and the merged exported state is identical.
    /// Partitionable programs (array-only state, one index field) really
    /// fan out; programs with scalar state exercise the single-shard
    /// fallback — the equality must hold either way.
    #[test]
    fn sharded_equals_single_threaded_slot_engine(
        stmts in program_strategy(),
        rows in trace_strategy(),
        shards in 1usize..=8,
    ) {
        let src = render(&stmts);
        let checked = domino_ast::parse_and_check(&src)
            .unwrap_or_else(|e| panic!("generated program must check: {e}\n{src}"));
        let target = Target::banzai(AtomKind::Pairs);
        let Ok(pipeline) = domino_compiler::compile(&src, &target) else {
            return Ok(());
        };

        let temps = stmts.iter().filter(|s| matches!(s, GenStmt::Field(_))).count();
        let trace = to_packets(&rows, temps);

        let mut slot = SlotMachine::compile(&pipeline)
            .unwrap_or_else(|e| panic!("slot lowering failed: {e}\n{src}"));
        let serial = slot.run_trace(&trace);

        let egress = banzai::AtomPipeline::passthrough("egress");
        let mut sharded = banzai::ShardedSwitch::new_slot(
            &pipeline,
            &egress,
            banzai::ShardConfig::new(shards),
        )
        .unwrap_or_else(|e| panic!("sharded build failed: {e}\n{src}"));
        let parts = sharded.run(&trace).partitioned().unwrap();

        // Per-shard outputs == serial outputs at the steered positions
        // (projected onto declared fields: the switch adds queue
        // metadata the bare engine does not stamp).
        let fields = checked.packet_fields.clone();
        let assignment: Vec<usize> = trace
        .iter()
        .enumerate()
        .map(|(i, p)| sharded.plan().steer(i, p))
        .collect();
        for (s, part) in parts.iter().enumerate() {
            let mut cursor = 0usize;
            for (i, &shard) in assignment.iter().enumerate() {
                if shard != s {
                    continue;
                }
                prop_assert_eq!(
                    part[cursor].project(&fields),
                    serial[i].project(&fields),
                    "shard {}/{} diverged at input {} for program:\n{}",
                    s, shards, i, src
                );
                cursor += 1;
            }
            prop_assert_eq!(part.len(), cursor, "shard {} length:\n{}", s, src);
        }
        prop_assert_eq!(
            sharded.export_merged_ingress_state().unwrap(),
            slot.export_state(),
            "merged state diverged ({} shards, fallback: {:?}):\n{}",
            shards, sharded.plan().fallback(), src
        );
    }

    /// Compilation is deterministic and the atom-kind ladder is monotone:
    /// a program accepted at kind K is accepted at every kind above K.
    #[test]
    fn target_ladder_is_monotone(stmts in program_strategy()) {
        let src = render(&stmts);
        let mut accepted_below = false;
        let mut results = Vec::new();
        for kind in AtomKind::ALL {
            let ok = domino_compiler::compile(&src, &Target::banzai(kind)).is_ok();
            results.push((kind, ok));
            if accepted_below {
                prop_assert!(
                    ok,
                    "ladder not monotone ({:?}): {:?}\n{}",
                    kind, results, src
                );
            }
            accepted_below |= ok;
        }
    }
}
