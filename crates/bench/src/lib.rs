//! # bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§5), printing
//! the paper-reported values next to the values measured from this
//! implementation (see DESIGN.md's experiment index and EXPERIMENTS.md for
//! the recorded comparison):
//!
//! * `table3` — atom areas (E1),
//! * `table4` — the algorithm × target matrix with pipeline shapes and
//!   LOC (E2; `--with-lut` adds the X1 row),
//! * `table5` — programmability vs. performance (E3),
//! * `table6` — circuit structure and minimum delays (E4),
//! * `figure3` — the flowlet pipeline (E5),
//! * `throughput` — the differential map-vs-slot execution-engine
//!   comparison (E9) plus the shard-scaling sweep of the flow-steered
//!   `ShardedSwitch` (E10), emitting `BENCH_throughput.json`; with
//!   `--check <baseline> --tolerance <f>` it doubles as the CI
//!   perf-regression gate (see [`throughput`]).
//!
//! Criterion benchmarks (`cargo bench -p bench`) cover compilation time
//! (E8) and simulated pipeline throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pcap;
pub mod sketch;
pub mod throughput;
pub mod wiregen;

use banzai::{AtomKind, Target};

/// Result of compiling one algorithm against the target ladder.
#[derive(Debug, Clone)]
pub struct AlgoResult {
    /// Algorithm name.
    pub name: &'static str,
    /// Least expressive standard target that accepts the program.
    pub least_atom: Option<AtomKind>,
    /// PVSM pipeline depth (stages).
    pub stages: usize,
    /// Maximum atoms per stage.
    pub max_atoms_per_stage: usize,
    /// Domino LOC of our source.
    pub domino_loc: usize,
    /// LOC of the generated P4 (on the least target, or Pairs+LUT for
    /// `codel_lut`).
    pub p4_loc: Option<usize>,
    /// Rejection reason on the most expressive baseline target, if the
    /// program doesn't map.
    pub reject_reason: Option<String>,
}

/// Compiles `algo` against every standard target (optionally LUT-extended)
/// and gathers the Table 4 row.
pub fn evaluate_algorithm(algo: &algorithms::Algorithm, with_lut: bool) -> AlgoResult {
    let compilation =
        domino_compiler::normalize(algo.source).unwrap_or_else(|e| panic!("{}: {e}", algo.name));

    let mk_target = |kind: AtomKind| {
        if with_lut {
            Target::banzai_with_lut(kind)
        } else {
            Target::banzai(kind)
        }
    };

    let mut least = None;
    let mut p4_loc = None;
    for kind in AtomKind::ALL {
        if let Ok(pipeline) = domino_compiler::lower(&compilation, &mk_target(kind)) {
            least = Some(kind);
            p4_loc = Some(p4_backend::loc(&p4_backend::generate(
                &compilation,
                &pipeline,
            )));
            break;
        }
    }
    let reject_reason = if least.is_none() {
        domino_compiler::lower(&compilation, &mk_target(AtomKind::Pairs))
            .err()
            .map(|e| e.message.lines().last().unwrap_or("").to_string())
    } else {
        None
    };

    AlgoResult {
        name: algo.name,
        least_atom: least,
        stages: compilation.pvsm.depth(),
        max_atoms_per_stage: compilation.pvsm.max_width(),
        domino_loc: algo.domino_loc(),
        p4_loc,
        reject_reason,
    }
}

/// Renders a text table with aligned columns.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats an optional atom kind like Table 4 ("Doesn't map" when absent).
pub fn kind_cell(kind: Option<AtomKind>) -> String {
    match kind {
        Some(k) => k.short_name().to_string(),
        None => "doesn't map".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_rows_match_paper_least_atoms() {
        // The headline reproduction: every algorithm's least expressive
        // atom equals the paper's Table 4 column.
        for algo in &algorithms::TABLE4 {
            let result = evaluate_algorithm(algo, false);
            assert_eq!(
                result.least_atom, algo.paper.least_atom,
                "{}: measured {:?} vs paper {:?}",
                algo.name, result.least_atom, algo.paper.least_atom
            );
        }
    }

    #[test]
    fn codel_maps_with_lut_only() {
        let lut = evaluate_algorithm(&algorithms::CODEL_LUT, true);
        assert_eq!(lut.least_atom, Some(AtomKind::Nested));
        let base = evaluate_algorithm(&algorithms::CODEL_LUT, false);
        assert_eq!(base.least_atom, None);
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["a", "bbbb"],
            &[
                vec!["xx".into(), "y".into()],
                vec!["1".into(), "22222".into()],
            ],
        );
        assert!(t.contains("xx  y"), "{t}");
        assert!(t.contains("1   22222"), "{t}");
    }

    #[test]
    fn stage_counts_are_in_paper_ballpark() {
        // Stage counts never differ from the paper's by more than ~4
        // (sources are rewritten, not copied; see EXPERIMENTS.md).
        for algo in &algorithms::TABLE4 {
            let result = evaluate_algorithm(algo, false);
            let diff = (result.stages as i64 - algo.paper.stages as i64).abs();
            assert!(
                diff <= 4,
                "{}: stages {} vs paper {}",
                algo.name,
                result.stages,
                algo.paper.stages
            );
        }
    }
}
