//! Code generation (§4.3): map the PVSM codelet pipeline onto a concrete
//! Banzai target, enforcing its computational and resource limits — or
//! reject the program (all-or-nothing).
//!
//! * **Computational limits**: every stateless codelet must be one
//!   operation from the stateless atom's op set; every stateful codelet
//!   must be synthesized onto the target's stateful atom template
//!   ([`atom_synth::map_to_kind`]).
//! * **Resource limits**: at most `stateless_per_stage` +
//!   `stateful_per_stage` atoms per stage — overfull stages are split by
//!   inserting new stages and spreading codelets (they are mutually
//!   independent by construction) — and at most `pipeline_depth` stages in
//!   total, else the program is rejected.

use banzai::machine::{AtomPipeline, AtomRole, CompiledAtom};
use banzai::Target;
use domino_ast::diag::{Diagnostic, Stage};
use domino_ast::StateVar;
use domino_ir::{Codelet, PvsmPipeline, TacStmt};

/// Lowers a PVSM pipeline to a Banzai atom pipeline for `target`.
///
/// `output_map` is the deparser view (declared field → final SSA version).
#[allow(clippy::too_many_arguments)]
pub fn generate(
    name: &str,
    pvsm: &PvsmPipeline,
    target: &Target,
    state_decls: Vec<StateVar>,
    declared_fields: Vec<String>,
    output_map: Vec<(String, String)>,
) -> Result<AtomPipeline, Diagnostic> {
    // 1. Computational limits: map every codelet to an atom.
    let mut mapped_stages: Vec<Vec<CompiledAtom>> = Vec::with_capacity(pvsm.stages.len());
    for (si, stage) in pvsm.stages.iter().enumerate() {
        let mut atoms = Vec::with_capacity(stage.len());
        for codelet in stage {
            atoms.push(map_codelet(codelet, target, si)?);
        }
        mapped_stages.push(atoms);
    }

    // 2. Resource limits: split overfull stages.
    let mut final_stages: Vec<Vec<CompiledAtom>> = Vec::new();
    for atoms in mapped_stages {
        for chunk in split_stage(atoms, target) {
            final_stages.push(chunk);
        }
    }
    if final_stages.len() > target.pipeline_depth {
        return Err(Diagnostic::global(
            Stage::CodeGen,
            format!(
                "program needs {} pipeline stages but target `{}` has only {}",
                final_stages.len(),
                target.name,
                target.pipeline_depth
            ),
        ));
    }

    let pipeline = AtomPipeline {
        name: name.to_string(),
        target_name: target.name.clone(),
        stages: final_stages,
        state_decls,
        declared_fields,
        output_map,
    };
    pipeline
        .validate_state_confinement()
        .map_err(|e| Diagnostic::global(Stage::CodeGen, format!("internal error: {e}")))?;
    Ok(pipeline)
}

/// Maps one codelet to an atom, or explains why it cannot run at line rate.
fn map_codelet(
    codelet: &Codelet,
    target: &Target,
    stage_index: usize,
) -> Result<CompiledAtom, Diagnostic> {
    if codelet.is_stateless() {
        debug_assert_eq!(
            codelet.stmts.len(),
            1,
            "stateless SCCs are single statements"
        );
        let stmt = &codelet.stmts[0];
        if let TacStmt::Assign { rhs, .. } = stmt {
            target.check_stateless_rhs(rhs).map_err(|reason| {
                Diagnostic::global(
                    Stage::CodeGen,
                    format!(
                        "cannot run at line rate: stage {} statement `{stmt}`: {reason}",
                        stage_index + 1
                    ),
                )
            })?;
        }
        Ok(CompiledAtom {
            codelet: codelet.clone(),
            role: AtomRole::Stateless,
        })
    } else {
        let synth = atom_synth::map_to_kind(codelet, target.stateful_kind).map_err(|e| {
            Diagnostic::global(
                Stage::CodeGen,
                format!(
                    "cannot run at line rate: stage {} stateful codelet\n{}\n{}",
                    stage_index + 1,
                    codelet,
                    e.message
                ),
            )
        })?;
        Ok(CompiledAtom {
            codelet: codelet.clone(),
            role: AtomRole::Stateful {
                kind: synth.minimal_kind,
                config: synth.config,
            },
        })
    }
}

/// Splits a stage whose atom counts exceed the target's per-stage limits
/// into consecutive stages, spreading codelets evenly (§4.3 "insert as
/// many new stages as required and spread codelets evenly across these
/// stages"). Codelets within one PVSM stage are mutually independent, so
/// any split preserves dependencies.
fn split_stage(atoms: Vec<CompiledAtom>, target: &Target) -> Vec<Vec<CompiledAtom>> {
    let (stateful, stateless): (Vec<_>, Vec<_>) = atoms.into_iter().partition(|a| a.is_stateful());
    let stages_for_stateful = stateful.len().div_ceil(target.stateful_per_stage.max(1));
    let stages_for_stateless = stateless.len().div_ceil(target.stateless_per_stage.max(1));
    let n_stages = stages_for_stateful.max(stages_for_stateless).max(1);

    let mut out: Vec<Vec<CompiledAtom>> = vec![Vec::new(); n_stages];
    for (i, a) in stateful.into_iter().enumerate() {
        out[i % n_stages].push(a);
    }
    for (i, a) in stateless.into_iter().enumerate() {
        out[i % n_stages].push(a);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use banzai::AtomKind;
    use domino_ast::BinOp;
    use domino_ir::{Operand, StateRef, TacRhs};

    fn fld(n: &str) -> Operand {
        Operand::Field(n.into())
    }

    fn stateless_codelet(dst: &str, rhs: TacRhs) -> Codelet {
        Codelet::new(vec![TacStmt::Assign {
            dst: dst.into(),
            rhs,
        }])
    }

    fn counter_codelet() -> Codelet {
        Codelet::new(vec![
            TacStmt::ReadState {
                dst: "c0".into(),
                state: StateRef::Scalar("c".into()),
            },
            TacStmt::Assign {
                dst: "c1".into(),
                rhs: TacRhs::Binary(BinOp::Add, fld("c0"), Operand::Const(1)),
            },
            TacStmt::WriteState {
                state: StateRef::Scalar("c".into()),
                src: fld("c1"),
            },
        ])
    }

    fn pvsm(stages: Vec<Vec<Codelet>>) -> PvsmPipeline {
        PvsmPipeline { stages }
    }

    #[test]
    fn maps_mixed_pipeline() {
        let p = pvsm(vec![
            vec![counter_codelet()],
            vec![stateless_codelet(
                "f",
                TacRhs::Binary(BinOp::Gt, fld("c1"), Operand::Const(3)),
            )],
        ]);
        let target = Target::banzai(AtomKind::Raw);
        let out = generate("t", &p, &target, vec![], vec![], vec![]).unwrap();
        assert_eq!(out.depth(), 2);
        assert_eq!(out.max_stateful_kind(), Some(AtomKind::Raw));
    }

    #[test]
    fn rejects_codelet_beyond_target_atom() {
        let p = pvsm(vec![vec![counter_codelet()]]);
        let target = Target::banzai(AtomKind::Write);
        let err = generate("t", &p, &target, vec![], vec![], vec![]).unwrap_err();
        assert!(err.message.contains("cannot run at line rate"), "{err}");
        assert!(err.message.contains("RAW"), "{err}");
    }

    #[test]
    fn rejects_multiplication_in_stateless_atom() {
        let p = pvsm(vec![vec![stateless_codelet(
            "m",
            TacRhs::Binary(BinOp::Mul, fld("a"), fld("b")),
        )]]);
        let target = Target::banzai(AtomKind::Pairs);
        let err = generate("t", &p, &target, vec![], vec![], vec![]).unwrap_err();
        assert!(err.message.contains("not a line-rate operation"), "{err}");
    }

    #[test]
    fn splits_overfull_stateless_stage() {
        let mut target = Target::banzai(AtomKind::Write);
        target.stateless_per_stage = 2;
        let codelets: Vec<Codelet> = (0..5)
            .map(|i| stateless_codelet(&format!("f{i}"), TacRhs::Copy(fld("x"))))
            .collect();
        let p = pvsm(vec![codelets]);
        let out = generate("t", &p, &target, vec![], vec![], vec![]).unwrap();
        // 5 codelets / 2 per stage = 3 stages, spread evenly (2,2,1).
        assert_eq!(out.depth(), 3);
        assert!(out.max_atoms_per_stage() <= 2);
        assert_eq!(out.atom_count(), 5);
    }

    #[test]
    fn splits_overfull_stateful_stage() {
        let mut target = Target::banzai(AtomKind::Raw);
        target.stateful_per_stage = 1;
        let mk = |var: &str| {
            Codelet::new(vec![
                TacStmt::ReadState {
                    dst: format!("{var}0"),
                    state: StateRef::Scalar(var.into()),
                },
                TacStmt::WriteState {
                    state: StateRef::Scalar(var.into()),
                    src: fld("x"),
                },
            ])
        };
        let p = pvsm(vec![vec![mk("a"), mk("b"), mk("c")]]);
        let out = generate("t", &p, &target, vec![], vec![], vec![]).unwrap();
        assert_eq!(out.depth(), 3);
        assert_eq!(out.max_stateful_per_stage(), 1);
    }

    #[test]
    fn rejects_when_depth_exceeded() {
        let mut target = Target::banzai(AtomKind::Write);
        target.pipeline_depth = 2;
        let p = pvsm(vec![
            vec![stateless_codelet("a", TacRhs::Copy(fld("x")))],
            vec![stateless_codelet("b", TacRhs::Copy(fld("a")))],
            vec![stateless_codelet("c", TacRhs::Copy(fld("b")))],
        ]);
        let err = generate("t", &p, &target, vec![], vec![], vec![]).unwrap_err();
        assert!(err.message.contains("3 pipeline stages"), "{err}");
        assert!(err.message.contains("only 2"), "{err}");
    }

    #[test]
    fn lut_target_admits_isqrt() {
        let rhs = TacRhs::Intrinsic {
            name: "isqrt".into(),
            args: vec![fld("x")],
            modulo: None,
        };
        let p = pvsm(vec![vec![stateless_codelet("r", rhs)]]);
        let base = Target::banzai(AtomKind::Write);
        assert!(generate("t", &p, &base, vec![], vec![], vec![]).is_err());
        let lut = Target::banzai_with_lut(AtomKind::Write);
        assert!(generate("t", &p, &lut, vec![], vec![], vec![]).is_ok());
    }
}
