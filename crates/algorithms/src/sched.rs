//! Scheduling workloads: rank-computing transactions and the traces that
//! exercise them (experiment E13).
//!
//! Packet transactions compute *ranks*; a PIFO (`banzai::pifo`) turns
//! ranks into departure order. This module holds the scheduling side of
//! that split: the token-bucket pacer source (whose `dl` output is an
//! earliest-departure time for a shaping PIFO), and seeded trace
//! generators for the three E13 disciplines — WFQ via `stfq`'s `start`
//! ranks, strict priority over per-class WFQ, and pacing.
//!
//! All generators are deterministic given their seed, like
//! [`crate::workload`].

use domino_ir::Packet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Domino source of the token-bucket pacer (egress-rank transaction).
///
/// Output field `dl` is the packet's earliest-departure cycle; feed it to
/// `SchedSpec::Shaping { rank: "dl" }`. Per-flow release times are spaced
/// at least [`PACER_GAP`] cycles apart.
pub const PACER_SOURCE: &str = include_str!("domino/pacer.domino");

/// The `GAP` constant baked into [`PACER_SOURCE`]: minimum spacing, in
/// cycles, between two releases of the same flow.
pub const PACER_GAP: i32 = 8;

/// A maximally unfair arrival order for fairness testing: `flows` flows,
/// each `per_flow` packets of random length in 64..1500 bytes, arriving
/// **flow-major** — every packet of flow 0, then every packet of flow 1,
/// and so on. All packets share virtual time 0 (one backlogged burst), so
/// `stfq`'s `start` ranks are exactly each flow's cumulative byte count
/// and a rank-ordered drain is byte-by-byte fair no matter how skewed the
/// arrival order was.
pub fn backlogged_burst(flows: usize, per_flow: usize, seed: u64) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Vec::with_capacity(flows * per_flow);
    for flow in 0..flows {
        for _ in 0..per_flow {
            trace.push(
                Packet::new()
                    .with("flow", flow as i32)
                    .with("length", rng.gen_range(64..1500))
                    .with("vt", 0)
                    .with("start", 0),
            );
        }
    }
    trace
}

/// The stfq workload with a `class` field: `class = flow % classes`,
/// for strict-priority-over-WFQ runs
/// (`SchedSpec::Priority { class: "class", rank: "start" }`).
pub fn classed_stfq_trace(n: usize, classes: usize, seed: u64) -> Vec<Packet> {
    crate::workload::stfq_trace(n, seed)
        .into_iter()
        .map(|p| {
            let class = p.expect("flow") % classes as i32;
            p.with("class", class)
        })
        .collect()
}

/// Pacer workload: `n` packets over a handful of flows, arrival cycle
/// `at = n + i` (so every earliest-departure time lands in the drain
/// phase of a burst-mode run). Few flows and back-to-back arrivals mean
/// per-flow spacing is well under [`PACER_GAP`], so the bucket actually
/// delays packets rather than passing them through.
pub fn pacer_trace(n: usize, seed: u64) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            Packet::new()
                .with("flow", rng.gen_range(0..4))
                .with("at", (n + i) as i32)
                .with("dl", 0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacer_source_parses_and_checks() {
        let checked = domino_ast::parse_and_check(PACER_SOURCE).unwrap();
        assert_eq!(checked.name, "pacer");
    }

    #[test]
    fn backlogged_burst_is_flow_major_with_zero_vt() {
        let t = backlogged_burst(4, 8, 9);
        assert_eq!(t.len(), 32);
        for (i, p) in t.iter().enumerate() {
            assert_eq!(p.expect("flow"), (i / 8) as i32);
            assert_eq!(p.expect("vt"), 0);
            assert!((64..1500).contains(&p.expect("length")));
        }
        assert_eq!(backlogged_burst(4, 8, 9), backlogged_burst(4, 8, 9));
    }

    #[test]
    fn classed_trace_derives_class_from_flow() {
        let t = classed_stfq_trace(200, 3, 11);
        for p in &t {
            assert_eq!(p.expect("class"), p.expect("flow") % 3);
        }
    }

    #[test]
    fn pacer_trace_arrivals_are_back_to_back_in_the_drain_phase() {
        let n = 100;
        let t = pacer_trace(n, 13);
        for (i, p) in t.iter().enumerate() {
            assert_eq!(p.expect("at"), (n + i) as i32);
            assert!((0..4).contains(&p.expect("flow")));
        }
    }
}
