//! Post-TAC cleanup: copy propagation and dead-code elimination.
//!
//! The paper's Figure 8 shows both effects: the write flank
//! `last_time[pkt.id] = pkt.arrival` stores `pkt.arrival` directly (the
//! copy created by the flank-rewriting pass has been propagated), and no
//! dead temporaries remain. SSA makes both transformations trivial and
//! safe: every field has exactly one definition.
//!
//! Assignments that define the *final version of a declared packet field*
//! are preserved even when they are pure copies — they are the observable
//! outputs the deparser reads (this keeps pipelines like Figure 3b at
//! their published depth, with the `pkt.next_hop` assignment as its own
//! final stage).

use domino_ir::{Operand, TacRhs, TacStmt};
use std::collections::{BTreeMap, BTreeSet};

/// Runs copy propagation then dead-code elimination.
///
/// `output_fields` are the internal names holding final values of declared
/// fields (the deparser roots).
pub fn cleanup(stmts: Vec<TacStmt>, output_fields: &BTreeSet<String>) -> Vec<TacStmt> {
    let propagated = propagate_copies(stmts);
    eliminate_dead_code(propagated, output_fields)
}

/// Replaces uses of copy-defined fields with their sources (following
/// chains), except that definitions of output fields are left in place.
fn propagate_copies(stmts: Vec<TacStmt>) -> Vec<TacStmt> {
    // Map from field to the operand it is a pure copy of.
    let mut alias: BTreeMap<String, Operand> = BTreeMap::new();
    for s in &stmts {
        if let TacStmt::Assign {
            dst,
            rhs: TacRhs::Copy(src),
        } = s
        {
            // Resolve chains eagerly: dst -> root.
            let root = match src {
                Operand::Field(f) => alias
                    .get(f)
                    .cloned()
                    .unwrap_or_else(|| Operand::Field(f.clone())),
                c @ Operand::Const(_) => c.clone(),
            };
            alias.insert(dst.clone(), root);
        }
    }

    let subst = |o: &Operand| -> Operand {
        match o {
            Operand::Field(f) => alias.get(f).cloned().unwrap_or_else(|| o.clone()),
            Operand::Const(_) => o.clone(),
        }
    };

    stmts
        .into_iter()
        .map(|s| match s {
            TacStmt::Assign { dst, rhs } => {
                let rhs = match rhs {
                    // Keep the copy itself; DCE decides whether it is dead.
                    // (But still forward its *source* through earlier
                    // copies.)
                    TacRhs::Copy(o) => TacRhs::Copy(subst(&o)),
                    TacRhs::Unary(op, o) => TacRhs::Unary(op, subst(&o)),
                    TacRhs::Binary(op, a, b) => TacRhs::Binary(op, subst(&a), subst(&b)),
                    TacRhs::Ternary(c, a, b) => TacRhs::Ternary(subst(&c), subst(&a), subst(&b)),
                    TacRhs::Intrinsic { name, args, modulo } => TacRhs::Intrinsic {
                        name,
                        args: args.iter().map(&subst).collect(),
                        modulo,
                    },
                };
                TacStmt::Assign { dst, rhs }
            }
            TacStmt::ReadState { dst, state } => TacStmt::ReadState {
                dst,
                state: subst_state(state, &subst),
            },
            TacStmt::WriteState { state, src } => TacStmt::WriteState {
                state: subst_state(state, &subst),
                src: subst(&src),
            },
        })
        .collect()
}

fn subst_state(
    state: domino_ir::StateRef,
    subst: &impl Fn(&Operand) -> Operand,
) -> domino_ir::StateRef {
    match state {
        domino_ir::StateRef::Scalar(n) => domino_ir::StateRef::Scalar(n),
        domino_ir::StateRef::Array { name, index } => domino_ir::StateRef::Array {
            name,
            index: subst(&index),
        },
    }
}

/// Removes assignments whose destination is never read and is not an
/// output field. State writes are side effects and always kept; state
/// reads are kept only if their destination is used (a write-only state
/// variable needs no read flank in hardware).
fn eliminate_dead_code(stmts: Vec<TacStmt>, output_fields: &BTreeSet<String>) -> Vec<TacStmt> {
    // Iterate to a fixed point: removing one dead statement can kill
    // another.
    let mut stmts = stmts;
    loop {
        let used: BTreeSet<String> = stmts
            .iter()
            .flat_map(|s| s.fields_read().into_iter().map(str::to_string))
            .collect();
        let before = stmts.len();
        stmts.retain(|s| match s {
            TacStmt::WriteState { .. } => true,
            TacStmt::ReadState { dst, .. } | TacStmt::Assign { dst, .. } => {
                used.contains(dst) || output_fields.contains(dst)
            }
        });
        if stmts.len() == before {
            return stmts;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_ast::BinOp;
    use domino_ir::StateRef;

    fn fld(n: &str) -> Operand {
        Operand::Field(n.into())
    }
    fn assign(dst: &str, rhs: TacRhs) -> TacStmt {
        TacStmt::Assign {
            dst: dst.into(),
            rhs,
        }
    }
    fn outputs(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn copy_propagates_into_state_write() {
        // last_time1 = arrival; last_time[id0] = last_time1
        // ⇒ write flank stores pkt.arrival directly (Figure 8 line 9).
        let stmts = vec![
            assign("last_time1", TacRhs::Copy(fld("arrival"))),
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "last_time".into(),
                    index: fld("id0"),
                },
                src: fld("last_time1"),
            },
        ];
        let out = cleanup(stmts, &outputs(&[]));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to_string(), "last_time[pkt.id0] = pkt.arrival;");
    }

    #[test]
    fn copy_chains_resolve_to_root() {
        let stmts = vec![
            assign("a", TacRhs::Copy(fld("x"))),
            assign("b", TacRhs::Copy(fld("a"))),
            assign("r", TacRhs::Binary(BinOp::Add, fld("b"), Operand::Const(1))),
        ];
        let out = cleanup(stmts, &outputs(&["r"]));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to_string(), "pkt.r = pkt.x + 1;");
    }

    #[test]
    fn output_copies_are_materialized() {
        // next_hop0 is the final version of a declared field: its copy
        // stays (it is the pipeline's observable stage-6 statement).
        let stmts = vec![
            assign("saved_hop1", TacRhs::Ternary(fld("c"), fld("n"), fld("s"))),
            assign("next_hop0", TacRhs::Copy(fld("saved_hop1"))),
        ];
        let out = cleanup(stmts, &outputs(&["next_hop0"]));
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].to_string(), "pkt.next_hop0 = pkt.saved_hop1;");
    }

    #[test]
    fn dead_read_flank_removed_for_write_only_state() {
        // Bloom-filter style: the read flank result is never used.
        let stmts = vec![
            TacStmt::ReadState {
                dst: "filter0".into(),
                state: StateRef::Array {
                    name: "filter".into(),
                    index: fld("h"),
                },
            },
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "filter".into(),
                    index: fld("h"),
                },
                src: Operand::Const(1),
            },
        ];
        let out = cleanup(stmts, &outputs(&[]));
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], TacStmt::WriteState { .. }));
    }

    #[test]
    fn used_read_flank_kept() {
        let stmts = vec![
            TacStmt::ReadState {
                dst: "c0".into(),
                state: StateRef::Scalar("c".into()),
            },
            assign(
                "c1",
                TacRhs::Binary(BinOp::Add, fld("c0"), Operand::Const(1)),
            ),
            TacStmt::WriteState {
                state: StateRef::Scalar("c".into()),
                src: fld("c1"),
            },
        ];
        let out = cleanup(stmts, &outputs(&[]));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn transitively_dead_chain_removed() {
        let stmts = vec![
            assign("a", TacRhs::Binary(BinOp::Add, fld("x"), Operand::Const(1))),
            assign("b", TacRhs::Binary(BinOp::Add, fld("a"), Operand::Const(2))),
            // Nothing uses b; both die.
        ];
        let out = cleanup(stmts, &outputs(&[]));
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn constant_copy_propagates() {
        let stmts = vec![
            assign("zero", TacRhs::Copy(Operand::Const(0))),
            TacStmt::WriteState {
                state: StateRef::Scalar("x".into()),
                src: fld("zero"),
            },
        ];
        let out = cleanup(stmts, &outputs(&[]));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to_string(), "x = 0;");
    }
}
