//! Semantic analysis.
//!
//! Turns a parsed [`Program`] into a [`CheckedProgram`]:
//!
//! * `#define` constants are folded away (including inside expressions),
//! * every name is resolved (packet field, state scalar, state array,
//!   intrinsic) and arity-checked,
//! * the Table 1 restrictions that are not already syntactic are enforced —
//!   most importantly that **all accesses to a given state array within one
//!   transaction use the same index expression** (switch memories do not
//!   support distinct read/write addresses per clock cycle, §3.2),
//! * `min`/`max` helper calls are desugared to conditional expressions,
//! * constant subexpressions are folded.
//!
//! After sema the AST satisfies: `Expr::Ident` only names state scalars,
//! `Expr::Index` only names state arrays with a stateless index expression,
//! and every `Expr::Call` is a known intrinsic with correct arity.

use crate::ast::*;
use crate::diag::{Diagnostic, Result, Stage};
use crate::intrinsics;
use crate::span::Span;
use std::collections::HashMap;

/// Kind of a state variable.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum StateKind {
    /// A single register.
    Scalar,
    /// A register array of the given (constant) size.
    Array { size: u32 },
}

/// A resolved state-variable declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateVar {
    /// Variable name.
    pub name: String,
    /// Scalar or array.
    pub kind: StateKind,
    /// Initial value of the scalar / of every array element.
    pub init: i32,
}

/// A semantically checked Domino program.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedProgram {
    /// Transaction name (e.g. `flowlet`).
    pub name: String,
    /// Packet parameter name (e.g. `pkt`).
    pub param: String,
    /// Declared packet fields, in declaration order.
    pub packet_fields: Vec<String>,
    /// State variables, in declaration order.
    pub state: Vec<StateVar>,
    /// The resolved, folded transaction body.
    pub body: Vec<Stmt>,
}

impl CheckedProgram {
    /// Looks up a state variable by name.
    pub fn state_var(&self, name: &str) -> Option<&StateVar> {
        self.state.iter().find(|s| s.name == name)
    }

    /// True if `name` is a declared packet field.
    pub fn is_packet_field(&self, name: &str) -> bool {
        self.packet_fields.iter().any(|f| f == name)
    }
}

/// Runs semantic analysis on a parsed program.
pub fn check(program: &Program) -> Result<CheckedProgram> {
    Checker::new(program)?.run()
}

/// Parses and checks in one step.
pub fn parse_and_check(source: &str) -> Result<CheckedProgram> {
    let program = crate::parser::parse(source)?;
    check(&program)
}

struct Checker<'a> {
    program: &'a Program,
    defines: HashMap<String, i32>,
    fields: Vec<String>,
    state: Vec<StateVar>,
    /// For each array, the canonical index expression seen first.
    array_index: HashMap<String, Expr>,
}

impl<'a> Checker<'a> {
    fn new(program: &'a Program) -> Result<Self> {
        Ok(Checker {
            program,
            defines: HashMap::new(),
            fields: Vec::new(),
            state: Vec::new(),
            array_index: HashMap::new(),
        })
    }

    fn err(&self, msg: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic::new(Stage::Sema, msg, span)
    }

    fn run(mut self) -> Result<CheckedProgram> {
        self.collect_defines()?;
        self.collect_fields()?;
        self.collect_state()?;

        let tx = &self.program.transaction;
        let mut body = Vec::with_capacity(tx.body.len());
        for stmt in &tx.body {
            body.push(self.check_stmt(stmt)?);
        }

        Ok(CheckedProgram {
            name: tx.name.clone(),
            param: tx.param.clone(),
            packet_fields: self.fields,
            state: self.state,
            body,
        })
    }

    fn collect_defines(&mut self) -> Result<()> {
        for d in &self.program.defines {
            if self.defines.contains_key(&d.name) {
                return Err(self.err(format!("duplicate #define `{}`", d.name), d.span));
            }
            let folded = self.resolve_expr(&d.value, true)?;
            let Expr::Int(v, _) = folded else {
                return Err(self.err(
                    format!("#define `{}` must be a compile-time constant", d.name),
                    d.span,
                ));
            };
            self.defines.insert(d.name.clone(), v);
        }
        Ok(())
    }

    fn collect_fields(&mut self) -> Result<()> {
        let tx = &self.program.transaction;
        let st = self
            .program
            .structs
            .iter()
            .find(|s| s.name == tx.struct_name)
            .ok_or_else(|| {
                self.err(
                    format!(
                        "transaction `{}` takes `struct {}` but no such struct is declared",
                        tx.name, tx.struct_name
                    ),
                    tx.span,
                )
            })?;
        for (f, fspan) in &st.fields {
            if self.fields.contains(f) {
                return Err(self.err(format!("duplicate packet field `{f}`"), *fspan));
            }
            self.fields.push(f.clone());
        }
        if self.fields.is_empty() {
            return Err(self.err(
                format!("packet struct `{}` has no fields", st.name),
                st.span,
            ));
        }
        Ok(())
    }

    fn collect_state(&mut self) -> Result<()> {
        for g in &self.program.globals {
            if self.state.iter().any(|s| s.name == g.name) {
                return Err(self.err(format!("duplicate state variable `{}`", g.name), g.span));
            }
            if self.defines.contains_key(&g.name) {
                return Err(self.err(
                    format!("`{}` is already a #define constant", g.name),
                    g.span,
                ));
            }
            let kind = match &g.size {
                None => StateKind::Scalar,
                Some(size_expr) => {
                    let folded = self.resolve_expr(size_expr, true)?;
                    let Expr::Int(size, _) = folded else {
                        return Err(self.err(
                            format!("array size of `{}` must be a compile-time constant", g.name),
                            size_expr.span(),
                        ));
                    };
                    if size <= 0 {
                        return Err(self.err(
                            format!("array `{}` must have a positive size (got {size})", g.name),
                            size_expr.span(),
                        ));
                    }
                    StateKind::Array { size: size as u32 }
                }
            };
            let init = match &g.init {
                None => 0,
                Some(e) => {
                    let folded = self.resolve_expr(e, true)?;
                    let Expr::Int(v, _) = folded else {
                        return Err(self.err(
                            format!(
                                "initializer of `{}` must be a compile-time constant",
                                g.name
                            ),
                            e.span(),
                        ));
                    };
                    v
                }
            };
            self.state.push(StateVar {
                name: g.name.clone(),
                kind,
                init,
            });
        }
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<Stmt> {
        match stmt {
            Stmt::Assign { lhs, rhs, span } => {
                let lhs = self.check_lvalue(lhs)?;
                let rhs = self.resolve_expr(rhs, false)?;
                Ok(Stmt::Assign {
                    lhs,
                    rhs,
                    span: *span,
                })
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => {
                let cond = self.resolve_expr(cond, false)?;
                let then_branch = then_branch
                    .iter()
                    .map(|s| self.check_stmt(s))
                    .collect::<Result<Vec<_>>>()?;
                let else_branch = else_branch
                    .iter()
                    .map(|s| self.check_stmt(s))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    span: *span,
                })
            }
        }
    }

    fn check_lvalue(&mut self, lhs: &LValue) -> Result<LValue> {
        match lhs {
            LValue::Field(base, field, span) => {
                self.check_field_access(base, field, *span)?;
                Ok(lhs.clone())
            }
            LValue::Scalar(name, span) => {
                if self.defines.contains_key(name) {
                    return Err(
                        self.err(format!("cannot assign to #define constant `{name}`"), *span)
                    );
                }
                match self.state.iter().find(|s| s.name == *name) {
                    Some(sv) if sv.kind == StateKind::Scalar => Ok(lhs.clone()),
                    Some(_) => Err(self.err(
                        format!("state array `{name}` must be indexed (`{name}[...]`)"),
                        *span,
                    )),
                    None if *name == self.program.transaction.param => Err(self.err(
                        "cannot assign to the packet parameter itself; assign to its fields",
                        *span,
                    )),
                    None => Err(self.err(format!("unknown variable `{name}`"), *span)),
                }
            }
            LValue::Array(name, idx, span) => {
                self.check_array_named(name, *span)?;
                let idx = self.resolve_expr(idx, false)?;
                self.check_array_index(name, &idx)?;
                Ok(LValue::Array(name.clone(), Box::new(idx), *span))
            }
        }
    }

    fn check_field_access(&self, base: &str, field: &str, span: Span) -> Result<()> {
        let param = &self.program.transaction.param;
        if base != param {
            return Err(self.err(
                format!("unknown struct variable `{base}` (the packet parameter is `{param}`)"),
                span,
            ));
        }
        if !self.fields.contains(&field.to_string()) {
            return Err(self.err(
                format!(
                    "`{}` has no field `{field}` (declared fields: {})",
                    self.program.transaction.struct_name,
                    self.fields.join(", ")
                ),
                span,
            ));
        }
        Ok(())
    }

    fn check_array_named(&self, name: &str, span: Span) -> Result<()> {
        match self.state.iter().find(|s| s.name == name) {
            Some(sv) if matches!(sv.kind, StateKind::Array { .. }) => Ok(()),
            Some(_) => Err(self.err(
                format!("`{name}` is a scalar state variable, not an array"),
                span,
            )),
            None => Err(self.err(format!("unknown state array `{name}`"), span)),
        }
    }

    /// Enforces the Table 1 rule: all accesses to an array within one
    /// transaction execution use the same index expression, and the index is
    /// computed from packet fields and constants only.
    fn check_array_index(&mut self, array: &str, idx: &Expr) -> Result<()> {
        if !idx.is_stateless() {
            return Err(self.err(
                format!(
                    "index of `{array}` must be computed from packet fields and \
                     constants only (state-dependent addressing cannot run at \
                     line rate)"
                ),
                idx.span(),
            ));
        }
        match self.array_index.get(array) {
            None => {
                self.array_index.insert(array.to_string(), idx.clone());
                Ok(())
            }
            Some(canonical) if canonical.structurally_equal(idx) => Ok(()),
            Some(canonical) => Err(self.err(
                format!(
                    "array `{array}` is accessed with two different index \
                     expressions (`{canonical}` and `{idx}`); Table 1 requires a \
                     single index per transaction execution because switch \
                     memories support one address per clock cycle"
                ),
                idx.span(),
            )),
        }
    }

    /// Resolves names, folds constants, desugars `min`/`max`.
    ///
    /// With `const_only`, any non-constant leaf is an error (used for
    /// `#define` values, array sizes, initializers).
    fn resolve_expr(&mut self, expr: &Expr, const_only: bool) -> Result<Expr> {
        let resolved = match expr {
            Expr::Int(v, s) => Expr::Int(*v, *s),
            Expr::Ident(name, s) => {
                if let Some(v) = self.defines.get(name) {
                    Expr::Int(*v, *s)
                } else if const_only {
                    return Err(self.err(format!("`{name}` is not a compile-time constant"), *s));
                } else {
                    match self.state.iter().find(|sv| sv.name == *name) {
                        Some(sv) if sv.kind == StateKind::Scalar => Expr::Ident(name.clone(), *s),
                        Some(_) => {
                            return Err(
                                self.err(format!("state array `{name}` must be indexed"), *s)
                            )
                        }
                        None => return Err(self.err(format!("unknown variable `{name}`"), *s)),
                    }
                }
            }
            Expr::Field(base, field, s) => {
                if const_only {
                    return Err(self.err("packet fields are not compile-time constants", *s));
                }
                self.check_field_access(base, field, *s)?;
                Expr::Field(base.clone(), field.clone(), *s)
            }
            Expr::Index(name, idx, s) => {
                if const_only {
                    return Err(self.err("state is not a compile-time constant", *s));
                }
                self.check_array_named(name, *s)?;
                let idx = self.resolve_expr(idx, false)?;
                self.check_array_index(name, &idx)?;
                Expr::Index(name.clone(), Box::new(idx), *s)
            }
            Expr::Unary(op, e, s) => {
                let e = self.resolve_expr(e, const_only)?;
                Expr::Unary(*op, Box::new(e), *s)
            }
            Expr::Binary(op, a, b, s) => {
                let a = self.resolve_expr(a, const_only)?;
                let b = self.resolve_expr(b, const_only)?;
                Expr::Binary(*op, Box::new(a), Box::new(b), *s)
            }
            Expr::Ternary(c, t, e, s) => {
                let c = self.resolve_expr(c, const_only)?;
                let t = self.resolve_expr(t, const_only)?;
                let e = self.resolve_expr(e, const_only)?;
                Expr::Ternary(Box::new(c), Box::new(t), Box::new(e), *s)
            }
            Expr::Call(name, args, s) => {
                if const_only {
                    return Err(self.err("calls are not compile-time constants", *s));
                }
                let args = args
                    .iter()
                    .map(|a| self.resolve_expr(a, false))
                    .collect::<Result<Vec<_>>>()?;
                match name.as_str() {
                    // min/max are pure sugar over the conditional operator.
                    "min" | "max" => {
                        if args.len() != 2 {
                            return Err(self.err(format!("`{name}` takes exactly 2 arguments"), *s));
                        }
                        let op = if name == "max" { BinOp::Gt } else { BinOp::Lt };
                        let a = args[0].clone();
                        let b = args[1].clone();
                        Expr::Ternary(
                            Box::new(Expr::Binary(
                                op,
                                Box::new(a.clone()),
                                Box::new(b.clone()),
                                *s,
                            )),
                            Box::new(a),
                            Box::new(b),
                            *s,
                        )
                    }
                    other => {
                        let Some(sig) = intrinsics::lookup(other) else {
                            return Err(self.err(
                                format!(
                                    "unknown function `{other}` (available intrinsics: {})",
                                    intrinsics::names().join(", ")
                                ),
                                *s,
                            ));
                        };
                        if args.len() != sig.arity {
                            return Err(self.err(
                                format!(
                                    "intrinsic `{other}` takes {} argument(s), got {}",
                                    sig.arity,
                                    args.len()
                                ),
                                *s,
                            ));
                        }
                        // Intrinsic arguments may read state: the flank pass
                        // turns such reads into packet fields. If the result
                        // feeds the *same* state variable's update, the codelet
                        // collapse rejects it (an intrinsic cannot sit inside a
                        // single-cycle stateful atom).
                        Expr::Call(other.to_string(), args, *s)
                    }
                }
            }
        };
        Ok(fold(resolved))
    }
}

/// Folds constant subexpressions (one level; callers fold bottom-up).
fn fold(e: Expr) -> Expr {
    match e {
        Expr::Unary(op, inner, s) => match *inner {
            Expr::Int(v, _) => Expr::Int(op.eval(v), s),
            other => Expr::Unary(op, Box::new(other), s),
        },
        Expr::Binary(op, a, b, s) => match (*a, *b) {
            (Expr::Int(x, _), Expr::Int(y, _)) => Expr::Int(op.eval(x, y), s),
            (a, b) => Expr::Binary(op, Box::new(a), Box::new(b), s),
        },
        Expr::Ternary(c, t, els, s) => match *c {
            Expr::Int(v, _) => {
                if v != 0 {
                    *t
                } else {
                    *els
                }
            }
            c => Expr::Ternary(Box::new(c), t, els, s),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<CheckedProgram> {
        check(&parse(src).unwrap())
    }

    const HEADER: &str = "struct P { int a; int b; int r; };\n";

    #[test]
    fn checks_simple_program() {
        let p = check_src(&format!(
            "{HEADER}int c = 0;\nvoid f(struct P pkt) {{ c = c + pkt.a; pkt.r = pkt.b; }}"
        ))
        .unwrap();
        assert_eq!(p.packet_fields, vec!["a", "b", "r"]);
        assert_eq!(p.state.len(), 1);
        assert_eq!(p.state[0].kind, StateKind::Scalar);
    }

    #[test]
    fn folds_defines_into_constants() {
        let p = check_src(
            "#define N 5\n#define M N + 2\nstruct P { int a; };\n\
             void f(struct P pkt) { pkt.a = M; }",
        )
        .unwrap();
        let Stmt::Assign { rhs, .. } = &p.body[0] else {
            panic!()
        };
        assert!(matches!(rhs, Expr::Int(7, _)));
    }

    #[test]
    fn resolves_array_size_from_define() {
        let p = check_src(
            "#define N 128\nint tbl[N] = {3};\nstruct P { int a; };\n\
             void f(struct P pkt) { tbl[pkt.a] = 0; }",
        )
        .unwrap();
        assert_eq!(p.state[0].kind, StateKind::Array { size: 128 });
        assert_eq!(p.state[0].init, 3);
    }

    #[test]
    fn rejects_unknown_field() {
        let err =
            check_src(&format!("{HEADER}void f(struct P pkt) {{ pkt.zz = 1; }}")).unwrap_err();
        assert!(err.message.contains("no field `zz`"), "{}", err.message);
    }

    #[test]
    fn rejects_wrong_param_base() {
        let err = check_src(&format!("{HEADER}void f(struct P pkt) {{ q.a = 1; }}")).unwrap_err();
        assert!(
            err.message.contains("unknown struct variable `q`"),
            "{}",
            err.message
        );
    }

    #[test]
    fn rejects_unknown_state() {
        let err =
            check_src(&format!("{HEADER}void f(struct P pkt) {{ counter = 1; }}")).unwrap_err();
        assert!(err.message.contains("unknown variable"), "{}", err.message);
    }

    #[test]
    fn rejects_assignment_to_define() {
        let err = check_src(&format!(
            "#define C 9\n{HEADER}void f(struct P pkt) {{ C = 1; }}"
        ))
        .unwrap_err();
        assert!(err.message.contains("#define constant"), "{}", err.message);
    }

    #[test]
    fn rejects_scalar_indexed_as_array() {
        let err = check_src(&format!(
            "{HEADER}int x = 0;\nvoid f(struct P pkt) {{ x[pkt.a] = 1; }}"
        ))
        .unwrap_err();
        assert!(err.message.contains("not an array"), "{}", err.message);
    }

    #[test]
    fn rejects_array_used_as_scalar() {
        let err = check_src(&format!(
            "{HEADER}int arr[4];\nvoid f(struct P pkt) {{ arr = 1; }}"
        ))
        .unwrap_err();
        assert!(err.message.contains("must be indexed"), "{}", err.message);
    }

    #[test]
    fn enforces_single_index_per_array() {
        let err = check_src(&format!(
            "{HEADER}int arr[4];\nvoid f(struct P pkt) {{ arr[pkt.a] = 1; pkt.r = arr[pkt.b]; }}"
        ))
        .unwrap_err();
        assert!(
            err.message.contains("two different index"),
            "{}",
            err.message
        );
        assert!(err.message.contains("Table 1"), "{}", err.message);
    }

    #[test]
    fn same_index_twice_is_fine() {
        check_src(&format!(
            "{HEADER}int arr[4];\nvoid f(struct P pkt) {{ pkt.r = arr[pkt.a]; arr[pkt.a] = pkt.r + 1; }}"
        ))
        .unwrap();
    }

    #[test]
    fn two_arrays_may_use_different_indices() {
        check_src(&format!(
            "{HEADER}int x[4];\nint y[4];\n\
             void f(struct P pkt) {{ x[pkt.a] = 1; y[pkt.b] = 2; }}"
        ))
        .unwrap();
    }

    #[test]
    fn rejects_state_dependent_index() {
        let err = check_src(&format!(
            "{HEADER}int ptr = 0;\nint arr[4];\nvoid f(struct P pkt) {{ arr[ptr] = 1; }}"
        ))
        .unwrap_err();
        assert!(
            err.message.contains("packet fields and constants"),
            "{}",
            err.message
        );
    }

    #[test]
    fn rejects_negative_array_size() {
        let err = check_src(&format!(
            "int arr[0];\n{HEADER}void f(struct P pkt) {{ arr[pkt.a] = 1; }}"
        ))
        .unwrap_err();
        assert!(err.message.contains("positive size"), "{}", err.message);
    }

    #[test]
    fn intrinsic_arity_checked() {
        let err = check_src(&format!(
            "{HEADER}void f(struct P pkt) {{ pkt.r = hash2(pkt.a); }}"
        ))
        .unwrap_err();
        assert!(err.message.contains("takes 2"), "{}", err.message);
    }

    #[test]
    fn unknown_intrinsic_rejected() {
        let err = check_src(&format!(
            "{HEADER}void f(struct P pkt) {{ pkt.r = sqrtf(pkt.a); }}"
        ))
        .unwrap_err();
        assert!(err.message.contains("unknown function"), "{}", err.message);
    }

    #[test]
    fn intrinsic_args_may_read_state() {
        // Allowed at sema level; the flank pass turns the state read into a
        // packet field. (Cyclic uses are rejected later, at codelet
        // collapse.)
        check_src(&format!(
            "{HEADER}int s = 0;\nvoid f(struct P pkt) {{ pkt.r = hash2(s, pkt.a); }}"
        ))
        .unwrap();
    }

    #[test]
    fn desugars_max_to_ternary() {
        let p = check_src(&format!(
            "{HEADER}void f(struct P pkt) {{ pkt.r = max(pkt.a, pkt.b); }}"
        ))
        .unwrap();
        let Stmt::Assign { rhs, .. } = &p.body[0] else {
            panic!()
        };
        assert_eq!(rhs.to_string(), "((pkt.a > pkt.b) ? pkt.a : pkt.b)");
    }

    #[test]
    fn folds_constant_arithmetic() {
        let p = check_src(&format!(
            "{HEADER}void f(struct P pkt) {{ pkt.r = (3 + 4) * 2; }}"
        ))
        .unwrap();
        let Stmt::Assign { rhs, .. } = &p.body[0] else {
            panic!()
        };
        assert!(matches!(rhs, Expr::Int(14, _)));
    }

    #[test]
    fn folds_constant_ternary() {
        let p = check_src(&format!(
            "{HEADER}void f(struct P pkt) {{ pkt.r = 1 ? pkt.a : pkt.b; }}"
        ))
        .unwrap();
        let Stmt::Assign { rhs, .. } = &p.body[0] else {
            panic!()
        };
        assert_eq!(rhs.to_string(), "pkt.a");
    }

    #[test]
    fn duplicate_state_rejected() {
        let err = check_src(&format!(
            "int x = 0;\nint x = 1;\n{HEADER}void f(struct P pkt) {{ }}"
        ))
        .unwrap_err();
        assert!(err.message.contains("duplicate state"), "{}", err.message);
    }

    #[test]
    fn missing_struct_rejected() {
        let err = check_src("struct Q { int a; };\nvoid f(struct P pkt) { }").unwrap_err();
        assert!(err.message.contains("no such struct"), "{}", err.message);
    }

    #[test]
    fn flowlet_checks_clean() {
        let src = r#"
#define NUM_FLOWLETS 8000
#define THRESHOLD 5
#define NUM_HOPS 10
struct Packet { int sport; int dport; int new_hop; int arrival; int next_hop; int id; };
int last_time[NUM_FLOWLETS] = {0};
int saved_hop[NUM_FLOWLETS] = {0};
void flowlet(struct Packet pkt) {
  pkt.new_hop = hash3(pkt.sport, pkt.dport, pkt.arrival) % NUM_HOPS;
  pkt.id = hash2(pkt.sport, pkt.dport) % NUM_FLOWLETS;
  if (pkt.arrival - last_time[pkt.id] > THRESHOLD) {
    saved_hop[pkt.id] = pkt.new_hop;
  }
  last_time[pkt.id] = pkt.arrival;
  pkt.next_hop = saved_hop[pkt.id];
}
"#;
        let p = check_src(src).unwrap();
        assert_eq!(p.state.len(), 2);
        assert_eq!(p.state[0].kind, StateKind::Array { size: 8000 });
    }
}
