//! Golden pinning of the [`DropReason`] dense-index space.
//!
//! The dense index and snake_case label of every drop reason are exported
//! surface: they key the per-reason counters in `BENCH_throughput.json`
//! and in merged shard diagnostics. New reasons must be **appended** —
//! never inserted, renamed, or reordered. This suite is the tripwire: if
//! an edit to `DropReason` / `ParseVerdict` shifts any existing index or
//! label, a test here fails with the exact delta.

use banzai::wire::{ParseVerdict, WireConfig};
use banzai::{AtomPipeline, DropCounters, DropReason, Switch};
use domino_ir::Packet;

/// The pinned assignment: (dense index, label), in iteration order.
/// Appending a reason appends a row; nothing else may change.
const GOLDEN: [(usize, &str); 14] = [
    (0, "queue_full"),
    (1, "truncated_ethernet"),
    (2, "truncated_vlan"),
    (3, "unsupported_ethertype"),
    (4, "bad_ip_version"),
    (5, "bad_ihl"),
    (6, "truncated_ipv4"),
    (7, "unsupported_ip_proto"),
    (8, "bad_tcp_offset"),
    (9, "truncated_tcp"),
    (10, "truncated_udp"),
    (11, "truncated_metadata"),
    (12, "backpressure"),
    (13, "sched_full"),
];

#[test]
fn dense_index_assignment_is_pinned() {
    assert_eq!(DropReason::COUNT, GOLDEN.len(), "COUNT changed");
    let got: Vec<(usize, String)> = DropReason::all()
        .map(|r| (r.index(), r.label().to_string()))
        .collect();
    let want: Vec<(usize, String)> = GOLDEN.iter().map(|&(i, l)| (i, l.to_string())).collect();
    assert_eq!(
        got, want,
        "DropReason dense indices/labels shifted — reasons are append-only"
    );
}

#[test]
fn all_is_exhaustive_dense_and_ordered() {
    let reasons: Vec<DropReason> = DropReason::all().collect();
    assert_eq!(reasons.len(), DropReason::COUNT);
    for (expect, r) in reasons.iter().enumerate() {
        assert_eq!(r.index(), expect, "{r:?} out of dense order");
    }
    // The three structural anchors of the space.
    assert_eq!(DropReason::QueueFull.index(), 0);
    assert_eq!(
        DropReason::Parse(ParseVerdict::TruncatedEthernet).index(),
        1,
        "parse verdicts start right after queue_full"
    );
    assert_eq!(
        DropReason::SchedFull.index(),
        DropReason::COUNT - 1,
        "sched_full is the most recently appended reason"
    );
    assert_eq!(
        DropReason::Backpressure.index(),
        DropReason::COUNT - 2,
        "backpressure sits just before it, frozen in place"
    );
    // Display goes through the same stable labels.
    assert_eq!(DropReason::Backpressure.to_string(), "backpressure");
    assert_eq!(DropReason::SchedFull.to_string(), "sched_full");
}

/// Builds counters holding real queue-full drops: a zero-capacity switch
/// tail-drops every packet.
fn queue_full_counters(n: usize) -> DropCounters {
    let mut sw = Switch::new(
        AtomPipeline::passthrough("in"),
        AtomPipeline::passthrough("out"),
        0,
    );
    let trace = vec![Packet::new(); n];
    sw.run(&trace)
        .for_each(|_| {})
        .expect("slice-backed sources cannot fail mid-stream");
    assert_eq!(sw.drops(), n as u64);
    sw.drop_counters().clone()
}

/// Builds counters holding real parse drops: truncated Ethernet frames.
fn parse_counters(n: usize) -> DropCounters {
    let mut sw = Switch::new(
        AtomPipeline::passthrough("in"),
        AtomPipeline::passthrough("out"),
        64,
    );
    let frames = vec![[0u8; 4]; n];
    let cfg = WireConfig::new();
    sw.run_frames(&frames, &cfg)
        .for_each(|_| {})
        .expect("slice-backed sources cannot fail mid-stream");
    assert_eq!(sw.drops(), n as u64);
    sw.drop_counters().clone()
}

/// Builds counters holding real scheduler drops: a zero-capacity PIFO
/// rejects every push with `SchedFull` (distinct from FIFO tail drop).
fn sched_full_counters(n: usize) -> DropCounters {
    let mut sw = Switch::new(
        AtomPipeline::passthrough("in"),
        AtomPipeline::passthrough("out"),
        0,
    )
    .with_scheduler(banzai::SchedSpec::Pifo {
        rank: "rank".into(),
    });
    let trace = vec![Packet::new(); n];
    sw.run(&trace)
        .scheduled()
        .collect()
        .expect("slice-backed sources cannot fail mid-stream");
    assert_eq!(sw.drops(), n as u64);
    sw.drop_counters().clone()
}

#[test]
fn merge_is_componentwise_addition() {
    let mut merged = queue_full_counters(3);
    merged.merge(&parse_counters(2));
    merged.merge(&queue_full_counters(4));
    merged.merge(&sched_full_counters(5));

    assert_eq!(merged.get(DropReason::QueueFull), 7);
    assert_eq!(
        merged.get(DropReason::Parse(ParseVerdict::TruncatedEthernet)),
        2
    );
    assert_eq!(merged.get(DropReason::Backpressure), 0);
    assert_eq!(merged.get(DropReason::SchedFull), 5);
    assert_eq!(merged.total(), 14);
    // The category accessors partition the total.
    assert_eq!(
        merged.queue_full() + merged.parse_total() + merged.backpressure() + merged.sched_full(),
        merged.total()
    );
    // iter() walks the same dense order with the merged values.
    let via_iter: u64 = merged.iter().map(|(_, c)| c).sum();
    assert_eq!(via_iter, merged.total());
}

#[test]
fn fresh_counters_are_all_zero_for_every_reason() {
    let c = DropCounters::new();
    assert_eq!(c.total(), 0);
    for r in DropReason::all() {
        assert_eq!(c.get(r), 0, "{r:?}");
    }
}
