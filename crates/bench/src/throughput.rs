//! The differential throughput harness (E9): replay large seeded traces
//! through the map-based reference engine and the slot-compiled fast path,
//! assert the two are bit-identical (packet-for-packet and
//! state-for-state), and measure the speedup the compile-time field-layout
//! pass buys.
//!
//! Workloads:
//!
//! * **machine workloads** — one Table 4 algorithm on its least-expressive
//!   target, [`Machine::run_trace`] vs a pre-flattened
//!   [`SlotMachine::run_trace_flat`] replay (the line-rate story: parsing
//!   into the PHV happens once at the parser, execution is pure integer
//!   indexing);
//! * **the Figure-1 switch workload** — flowlet at ingress, CoDel (LUT) at
//!   egress, a real queue in between, driven once per engine through the
//!   unified run builder (`switch.run(trace).collect()`, map-packet edges
//!   included on both sides);
//! * **wire roundtrip workloads (E11)** — the same traces born as raw
//!   byte frames (`bench::wiregen`) through the full
//!   parse → pipeline → deparse path ([`wire_workload`]), plus the
//!   malformed-traffic parser-stress differential ([`wire_stress`]).
//!
//! Every run *is* a differential test: divergence panics, so any recorded
//! [`Measurement`] is also a correctness witness.
//!
//! Three additions ride on the same machinery:
//!
//! * **E13 — the programmable-scheduling workloads** ([`sched_workload`]):
//!   the three PIFO disciplines — WFQ via `stfq`'s `start` ranks, strict
//!   priority over per-class WFQ, and token-bucket shaping via the
//!   pacer's earliest-departure ranks — each driven through
//!   `switch.run(trace).scheduled().collect()` on both engines (bit-identical
//!   departures, counters, and state), re-run 4-way sharded
//!   (bit-identical to serial), and checked against its scheduling
//!   invariant (fairness bound / priority exactness / pacing) before the
//!   timing is recorded. Rows land in the JSON under the `sched` key and
//!   are gated by [`parse_sched_baseline`] /
//!   [`check_sched_regressions`].
//! * **E10 — the shard-scaling sweep** ([`shard_sweep`]): the flowlet,
//!   heavy-hitters, and bloom-filter traces through a [`ShardedSwitch`]
//!   at 1/2/4/8 shards. Every configuration is verified against the
//!   serial switch with the oracle chosen by the plan's partitioning
//!   tier — per-shard positional bit-identity for `Exact`, the sketch's
//!   own (ε, δ) contract ([`crate::sketch`]) for `Replicable` — then
//!   records both the threaded wall clock *and* the per-shard busy
//!   times (measured sequentially, free of scheduler interference). On
//!   an N-core host wall clock approaches
//!   [`ShardMeasurement::critical_ns`]; on the single-core CI runner
//!   only the critical-path number can show scaling, which is why both
//!   are recorded, clearly labeled.
//! * **the CI perf-regression gate** ([`parse_baseline`] /
//!   [`check_regressions`], plus [`parse_scaling_baseline`] /
//!   [`check_scaling_regressions`] for the E10 rows): compares freshly
//!   measured slot speedups and shard-scaling rows against the
//!   committed `BENCH_throughput.json` and fails the build when a
//!   workload regresses below tolerance — or when a sketch workload
//!   loses effective shards (regression to the 1-shard fallback is an
//!   exact structural trip). Speedups (not absolute pps) are compared,
//!   so the gate is robust to runner hardware.

use crate::wiregen::{self, GenOptions};
use banzai::fault::{FaultPlan, FaultSpec, FaultyEngine};
use banzai::wire::{self, BoundParser};
use banzai::{
    Backpressure, DropReason, Machine, SchedDeparture, SchedSpec, ShardConfig, ShardTimings,
    ShardedSwitch, SlotMachine, Switch, Target,
};
use domino_ir::Packet;
use std::time::Instant;

/// One workload's timed, verified comparison of the two engines.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload name (algorithm, or `figure1_switch`).
    pub name: String,
    /// Packets replayed through each engine.
    pub packets: usize,
    /// Wall-clock nanoseconds for the map-based reference path.
    pub map_ns: u128,
    /// Wall-clock nanoseconds for the slot-compiled fast path.
    pub slot_ns: u128,
}

impl Measurement {
    /// Packets per second through the map-based reference path.
    pub fn map_pps(&self) -> f64 {
        self.packets as f64 / (self.map_ns as f64 / 1e9)
    }

    /// Packets per second through the slot-compiled fast path.
    pub fn slot_pps(&self) -> f64 {
        self.packets as f64 / (self.slot_ns as f64 / 1e9)
    }

    /// Fast-path speedup over the reference path.
    pub fn speedup(&self) -> f64 {
        self.map_ns as f64 / self.slot_ns.max(1) as f64
    }
}

/// Independent repetitions for every E9/E11 engine timing; each timed
/// region keeps its minimum over these (see [`machine_workload`] for why
/// minimum-of-reps is the right estimator on a noisy host).
const ENGINE_REPS: usize = 3;

/// Compiles `name` on its least-expressive paper target (LUT-extended for
/// `codel_lut`), mirroring `tests/differential.rs`.
fn compile_least(name: &str) -> banzai::AtomPipeline {
    let a = algorithms::by_name(name).unwrap_or_else(|| panic!("unknown algorithm `{name}`"));
    let kind = a.paper.least_atom.expect("algorithm must map");
    let target = if a.name == "codel_lut" {
        Target::banzai_with_lut(kind)
    } else {
        Target::banzai(kind)
    };
    domino_compiler::compile(a.source, &target).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Replays `n` seeded packets of algorithm `name` through both engines and
/// returns the timed, verified measurement.
///
/// # Panics
///
/// Panics if the two paths diverge on any output packet or on final state —
/// the measurement doubles as a differential test.
pub fn machine_workload(name: &str, n: usize, seed: u64) -> Measurement {
    let pipeline = compile_least(name);
    let trace = algorithms::by_name(name).unwrap().trace(n, seed);

    // Each engine keeps its *minimum* time over ENGINE_REPS runs on fresh
    // engine instances: host interference (virtualization steal, frequency
    // excursions) only ever inflates a measurement, so the min is the
    // cleanest estimate of true cost — and taking it on both sides keeps
    // the gate's speedup ratio stable run to run. Outputs are deterministic,
    // so the differential assertions check the last rep.
    let mut map_machine = Machine::new(pipeline.clone());
    let mut map_out = Vec::new();
    let mut map_ns = u128::MAX;
    for _ in 0..ENGINE_REPS {
        map_machine = Machine::new(pipeline.clone());
        let t = Instant::now();
        map_out = map_machine.run_trace(&trace);
        map_ns = map_ns.min(t.elapsed().as_nanos());
    }

    let mut slot_machine =
        SlotMachine::compile(&pipeline).expect("compiled pipelines are slot-executable");
    // Parse once onto the layout (a real parser fills the PHV exactly
    // once); the timed region is pure slot-indexed execution.
    let flat = slot_machine.flatten_trace(&trace);
    let mut flat_out = Vec::new();
    let mut slot_ns = u128::MAX;
    for _ in 0..ENGINE_REPS {
        slot_machine =
            SlotMachine::compile(&pipeline).expect("compiled pipelines are slot-executable");
        let t = Instant::now();
        flat_out = slot_machine.run_trace_flat(&flat);
        slot_ns = slot_ns.min(t.elapsed().as_nanos());
    }

    // Bit-identical or bust: state…
    assert_eq!(
        *map_machine.state(),
        slot_machine.export_state(),
        "{name}: engines diverged on final state"
    );
    // …and every output packet, realized through the deparser.
    for (i, (m, f)) in map_out.iter().zip(&flat_out).enumerate() {
        let mut realized = trace[i].clone();
        slot_machine.merge_back(f, &mut realized);
        assert_eq!(*m, realized, "{name}: engines diverged at packet {i}");
    }

    Measurement {
        name: name.to_string(),
        packets: n,
        map_ns,
        slot_ns,
    }
}

/// Drives the Figure-1 switch (flowlet ingress, CoDel-LUT egress, bounded
/// queue at 1/3 line rate) once per engine and returns the measurement.
///
/// # Panics
///
/// Panics if outputs, drop counts, transmit counts, or final pipeline
/// state differ between the engines.
pub fn switch_workload(n: usize, seed: u64) -> Measurement {
    let ingress = compile_least("flowlet");
    let egress = compile_least("codel_lut");
    let trace: Vec<Packet> = algorithms::by_name("flowlet").unwrap().trace(n, seed);

    // Min over fresh-switch reps, for the same reason as `machine_workload`.
    let mut map_switch = Switch::new(ingress.clone(), egress.clone(), 512).with_drain_period(3);
    let mut map_out = Vec::new();
    let mut map_ns = u128::MAX;
    for _ in 0..ENGINE_REPS {
        map_switch = Switch::new(ingress.clone(), egress.clone(), 512).with_drain_period(3);
        let t = Instant::now();
        map_out = map_switch
            .run(&trace)
            .collect()
            .expect("slice-backed sources cannot fail mid-stream");
        map_ns = map_ns.min(t.elapsed().as_nanos());
    }

    let mut slot_switch = Switch::new_slot(&ingress, &egress, 512)
        .expect("compiled pipelines are slot-executable")
        .with_drain_period(3);
    let mut slot_out = Vec::new();
    let mut slot_ns = u128::MAX;
    for _ in 0..ENGINE_REPS {
        slot_switch = Switch::new_slot(&ingress, &egress, 512)
            .expect("compiled pipelines are slot-executable")
            .with_drain_period(3);
        let t = Instant::now();
        slot_out = slot_switch
            .run(&trace)
            .collect()
            .expect("slice-backed sources cannot fail mid-stream");
        slot_ns = slot_ns.min(t.elapsed().as_nanos());
    }

    assert_eq!(map_out, slot_out, "switch engines diverged on outputs");
    assert_eq!(
        map_switch.drops(),
        slot_switch.drops(),
        "drop counts diverged"
    );
    assert_eq!(
        map_switch.transmitted(),
        slot_switch.transmitted(),
        "transmit counts diverged"
    );
    assert_eq!(
        map_switch.export_ingress_state(),
        slot_switch.export_ingress_state(),
        "ingress state diverged"
    );
    assert_eq!(
        map_switch.export_egress_state(),
        slot_switch.export_egress_state(),
        "egress state diverged"
    );

    Measurement {
        name: "figure1_switch".to_string(),
        packets: n,
        map_ns,
        slot_ns,
    }
}

/// E11 — the byte-level roundtrip workload: the same seeded trace as the
/// E9 machine workload, but **born as wire frames** (`bench::wiregen`)
/// and driven through the full parse → pipeline → deparse path on both
/// engines:
///
/// * the reference path parses each frame with the map-level
///   [`wire::parse`], processes the map packet, and deparses it;
/// * the fast path binds a [`BoundParser`] to the slot pipeline's field
///   table and runs [`BoundParser::parse_flat`] →
///   [`SlotMachine::process_flat`] → [`BoundParser::deparse_flat`].
///
/// Unlike [`machine_workload`] (where parsing is deliberately hoisted out
/// of the timed region), the timed region here **includes** the parser
/// and deparser on both sides — that's the number E11 exists to record:
/// what the byte front-end costs around each engine.
///
/// # Panics
///
/// Panics if the two paths disagree on any output **byte** or on final
/// state — stricter than field equality, since deparsing also covers
/// patch placement and untouched-byte preservation.
pub fn wire_workload(name: &str, n: usize, seed: u64) -> Measurement {
    let pipeline = compile_least(name);
    let algo = algorithms::by_name(name).unwrap();
    let wt = wiregen::wire_trace(&algo.trace(n, seed), seed, &GenOptions::default());

    // Min over fresh-engine reps, for the same reason as `machine_workload`.
    let mut map_machine = Machine::new(pipeline.clone());
    let mut map_out: Vec<Vec<u8>> = Vec::new();
    let mut map_ns = u128::MAX;
    for _ in 0..ENGINE_REPS {
        map_machine = Machine::new(pipeline.clone());
        let t = Instant::now();
        map_out = wt
            .frames
            .iter()
            .map(|frame| {
                let wp =
                    wire::parse(frame, &wt.cfg).expect("wiregen default frames are well-formed");
                let processed = map_machine.process(wp.pkt);
                wire::deparse(&processed, &wp.layout)
            })
            .collect();
        map_ns = map_ns.min(t.elapsed().as_nanos());
    }

    let mut slot_machine =
        SlotMachine::compile(&pipeline).expect("compiled pipelines are slot-executable");
    let parser = BoundParser::bind(wt.cfg.clone(), slot_machine.field_table().clone());
    let mut slot_out: Vec<Vec<u8>> = Vec::new();
    let mut slot_ns = u128::MAX;
    for _ in 0..ENGINE_REPS {
        slot_machine =
            SlotMachine::compile(&pipeline).expect("compiled pipelines are slot-executable");
        let t = Instant::now();
        slot_out = wt
            .frames
            .iter()
            .map(|frame| {
                let (mut flat, layout) = parser
                    .parse_flat(frame)
                    .expect("same frames, same verdicts");
                slot_machine.process_flat(&mut flat);
                parser.deparse_flat(&flat, &layout)
            })
            .collect();
        slot_ns = slot_ns.min(t.elapsed().as_nanos());
    }

    assert_eq!(
        *map_machine.state(),
        slot_machine.export_state(),
        "wire_{name}: engines diverged on final state"
    );
    for (i, (m, s)) in map_out.iter().zip(&slot_out).enumerate() {
        assert_eq!(m, s, "wire_{name}: deparsed frames diverged at packet {i}");
    }

    Measurement {
        name: format!("wire_{name}"),
        packets: n,
        map_ns,
        slot_ns,
    }
}

/// The parser-stress differential: a malformed-heavy wire trace through
/// the whole Figure-1 switch (`switch.run_frames(frames, cfg).collect()`)
/// on both engines, with the per-reason drop counters checked three ways.
#[derive(Debug, Clone)]
pub struct StressReport {
    /// Frames offered to the switch.
    pub frames: usize,
    /// Frames transmitted (accepted, survived the queue, deparsed).
    pub transmitted: u64,
    /// Congestion (queue-full) drops.
    pub queue_full: u64,
    /// `(verdict label, count)` for every nonzero parse-drop reason.
    pub parse_drops: Vec<(&'static str, u64)>,
}

/// Runs the parser-stress scenario: flowlet ingress, pass-through egress,
/// an oversubscribed link, and a wire trace where `malform_rate` of the
/// frames are corrupted. Asserts the map-engine and slot-engine switches
/// agree on every transmitted **byte**, on every per-reason drop counter,
/// and that the parse counters equal the [`wiregen::expected_verdicts`]
/// oracle computed from the frames alone.
///
/// # Panics
///
/// Panics on any divergence.
pub fn wire_stress(n: usize, seed: u64, malform_rate: f64) -> StressReport {
    let ingress = compile_least("flowlet");
    let egress = banzai::AtomPipeline::passthrough("egress");
    let opts = GenOptions {
        malform_rate,
        ..GenOptions::default()
    };
    let wt = wiregen::wire_trace_for("flowlet", n, seed, &opts);
    let (expected_accepted, expected_counts) = wiregen::expected_verdicts(&wt.frames, &wt.cfg);

    let mut map_switch = Switch::new(ingress.clone(), egress.clone(), 256).with_drain_period(2);
    let map_out = map_switch
        .run_frames(&wt.frames, &wt.cfg)
        .collect()
        .expect("slice-backed sources cannot fail mid-stream");
    let mut slot_switch = Switch::new_slot(&ingress, &egress, 256)
        .expect("compiled pipelines are slot-executable")
        .with_drain_period(2);
    let slot_out = slot_switch
        .run_frames(&wt.frames, &wt.cfg)
        .collect()
        .expect("slice-backed sources cannot fail mid-stream");

    assert_eq!(map_out, slot_out, "stress: transmitted bytes diverged");
    assert_eq!(
        map_switch.drop_counters(),
        slot_switch.drop_counters(),
        "stress: drop counters diverged"
    );
    let counters = map_switch.drop_counters();
    assert_eq!(
        counters.parse_total(),
        expected_counts.iter().sum::<u64>(),
        "stress: parse drops disagree with the frame oracle"
    );
    for v in banzai::wire::ParseVerdict::ALL {
        assert_eq!(
            counters.get(DropReason::Parse(v)),
            expected_counts[v.index()],
            "stress: counter for `{v}` disagrees with the frame oracle"
        );
    }
    assert_eq!(
        map_switch.transmitted() + counters.queue_full(),
        expected_accepted,
        "stress: accepted frames must be transmitted or tail-dropped"
    );

    StressReport {
        frames: wt.frames.len(),
        transmitted: map_switch.transmitted(),
        queue_full: counters.queue_full(),
        parse_drops: counters
            .iter()
            .filter(|&(r, c)| c > 0 && r != DropReason::QueueFull)
            .map(|(r, c)| (r.label(), c))
            .collect(),
    }
}

/// One shard-count configuration of the E10 scaling sweep: a verified
/// differential run of the sharded switch, with both wall-clock and
/// critical-path timings.
#[derive(Debug, Clone)]
pub struct ShardMeasurement {
    /// Workload (ingress algorithm) name.
    pub workload: String,
    /// Packets in the trace.
    pub packets: usize,
    /// Shards requested.
    pub requested: usize,
    /// Shards granted by the plan (1 on fallback).
    pub effective: usize,
    /// Wall-clock nanoseconds of the threaded run **on this host** (on a
    /// single-core runner this cannot beat 1 shard; see `critical_ns`).
    pub wall_ns: u128,
    /// The sequential run's lane breakdown (steer / per-shard busy /
    /// merge), measured free of scheduler interference.
    pub timings: banzai::ShardTimings,
    /// The partitioning tier the plan resolved to (what the run's
    /// differential oracle was: bit-identity for `Exact`, the sketch
    /// (ε, δ) contract for `Replicable`).
    pub tier: banzai::ShardTier,
    /// The single-shard fallback diagnostic, if the plan fell back.
    pub fallback: Option<String>,
}

impl ShardMeasurement {
    /// Modeled steady-state completion time on dedicated hardware — the
    /// busiest lane of the RX-core / worker-cores / TX-core pipeline
    /// (delegates to [`banzai::ShardTimings::critical_ns`]).
    pub fn critical_ns(&self) -> u128 {
        self.timings.critical_ns()
    }

    /// Packets per second at the critical-path (modeled multi-core) rate.
    pub fn modeled_pps(&self) -> f64 {
        self.packets as f64 / (self.critical_ns().max(1) as f64 / 1e9)
    }

    /// Packets per second at this host's threaded wall-clock rate.
    pub fn wall_pps(&self) -> f64 {
        self.packets as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }
}

/// E10: replays an algorithm's seeded trace through a [`ShardedSwitch`]
/// (slot-compiled shards, pass-through egress, line-rate queue) at each
/// requested shard count.
///
/// Every configuration is a differential test against the serial slot
/// switch, with the oracle chosen by the plan's tier:
///
/// * **Exact** (keyed steering, e.g. flowlet): each shard's outputs
///   must equal the serial outputs at exactly the positions steered to
///   it (full packets, queue metadata included), and the merged
///   exported state must equal the serial state bit-for-bit.
/// * **Replicable** (full sketch replica per shard, e.g.
///   heavy_hitters): the merged exported state must *still* equal the
///   serial state bit-for-bit (sum/max merges are exact on final
///   state), and both the serial and merged states must satisfy the
///   sketch's own contract — spec replay, overestimate, mass
///   conservation, and the (ε, δ) bound
///   ([`crate::sketch::verify_sketch`]). Per-packet in-stream estimates
///   are shard-local by design, so positional bit-identity is not
///   asserted; output counts and drop counters still must agree.
///
/// In every tier the threaded run must reproduce the sequential merge
/// bit-for-bit, and drop/transmit counters must agree with serial.
///
/// # Panics
///
/// Panics on any divergence — a recorded measurement is a correctness
/// witness.
pub fn shard_sweep(
    name: &str,
    n: usize,
    seed: u64,
    shard_counts: &[usize],
) -> Vec<ShardMeasurement> {
    const CAPACITY: usize = 512;
    let ingress = compile_least(name);
    let egress = banzai::AtomPipeline::passthrough("egress");
    let trace = algorithms::by_name(name).unwrap().trace(n, seed);

    let mut serial = Switch::new_slot(&ingress, &egress, CAPACITY)
        .expect("compiled pipelines are slot-executable");
    let serial_out = serial
        .run(&trace)
        .collect()
        .expect("slice-backed sources cannot fail mid-stream");
    let serial_state = serial.export_ingress_state();

    // One discarded instrumented pass: the partition/replay allocation
    // pattern differs from the serial run's, and its first execution pays
    // allocator/page-cache costs that would otherwise skew whichever
    // shard count happens to run first.
    ShardedSwitch::new_slot(
        &ingress,
        &egress,
        ShardConfig::new(1).with_capacity(CAPACITY),
    )
    .expect("compiled pipelines are slot-executable")
    .run(&trace)
    .instrumented()
    .expect("line-rate shard switches support stamped runs");

    shard_counts
        .iter()
        .map(|&count| {
            let cfg = ShardConfig::new(count).with_capacity(CAPACITY);

            // Pass 1 — verification (untimed): per-shard outputs must be
            // the serial outputs at exactly the steered positions, state
            // must merge back bit-identical, counters must agree. All of
            // its allocations are freed before anything is timed — at
            // millions of map packets, live copies push the allocator
            // into a page-churn regime that poisons measurements.
            let mut verify_sw = ShardedSwitch::new_slot(&ingress, &egress, cfg.clone())
                .expect("compiled pipelines are slot-executable");
            let parts = verify_sw
                .run(&trace)
                .partitioned()
                .expect("line-rate shard switches support stamped runs");
            let tier = verify_sw.plan().tier();
            match tier {
                banzai::ShardTier::Exact | banzai::ShardTier::Fallback => {
                    let assignment: Vec<usize> = trace
                        .iter()
                        .enumerate()
                        .map(|(i, p)| verify_sw.plan().steer(i, p))
                        .collect();
                    for (s, part) in parts.iter().enumerate() {
                        let mut cursor = 0usize;
                        for (i, &shard) in assignment.iter().enumerate() {
                            if shard != s {
                                continue;
                            }
                            assert_eq!(
                                part[cursor], serial_out[i],
                                "{name}@{count}: shard {s} diverged at input {i}"
                            );
                            cursor += 1;
                        }
                        assert_eq!(part.len(), cursor, "{name}@{count}: shard {s} length");
                    }
                }
                banzai::ShardTier::Replicable => {
                    // Replica shards see only their slice of the trace, so
                    // in-stream estimates are not positionally comparable;
                    // the statistical tier below is the oracle. Packet
                    // conservation still holds shard by shard.
                    let assignment: Vec<usize> = trace
                        .iter()
                        .enumerate()
                        .map(|(i, p)| verify_sw.plan().steer(i, p))
                        .collect();
                    for (s, part) in parts.iter().enumerate() {
                        let offered = assignment.iter().filter(|&&shard| shard == s).count();
                        assert_eq!(
                            part.len(),
                            offered,
                            "{name}@{count}: shard {s} transmitted {} of {offered} offered",
                            part.len()
                        );
                    }
                    let spec = verify_sw
                        .plan()
                        .ingress_replica()
                        .expect("replicable tier has an ingress replica spec")
                        .clone();
                    let merged = verify_sw.export_merged_ingress_state().unwrap();
                    crate::sketch::verify_sketch(
                        &spec,
                        &trace,
                        &serial_state,
                        &format!("{name} serial"),
                    );
                    crate::sketch::verify_sketch(
                        &spec,
                        &trace,
                        &merged,
                        &format!("{name}@{count} merged"),
                    );
                }
            }
            assert_eq!(
                verify_sw.export_merged_ingress_state().unwrap(),
                serial_state,
                "{name}@{count}: merged state diverged"
            );
            assert_eq!(verify_sw.transmitted(), serial.transmitted());
            assert_eq!(verify_sw.drops(), serial.drops());
            let effective = verify_sw.plan().effective();
            let fallback = verify_sw.plan().fallback().map(str::to_string);
            let merged_len: usize = parts.iter().map(|p| p.len()).sum();
            drop(parts);
            drop(verify_sw);

            // Pass 2 — sequential timing: per-shard busy times measured
            // one after another on this thread (scheduler-free), with
            // only the run's own working set live. Wall time on this
            // host arrives with bursty interference (virtualization
            // steal, frequency excursions) that can inflate a single
            // lane 2–4x, so each lane keeps its *minimum* over
            // independent repetitions — under purely additive noise the
            // minimum is the consistent estimator of true busy time,
            // and the runs are deterministic so every repetition does
            // identical work.
            const TIMING_REPS: usize = 3;
            let mut merged: Option<Vec<_>> = None;
            let mut timings: Option<ShardTimings> = None;
            for _ in 0..TIMING_REPS {
                let mut timed_sw = ShardedSwitch::new_slot(&ingress, &egress, cfg.clone())
                    .expect("compiled pipelines are slot-executable");
                let run = timed_sw
                    .run(&trace)
                    .instrumented()
                    .expect("line-rate shard switches support stamped runs");
                timings = Some(match timings.take() {
                    None => run.timings,
                    Some(best) => ShardTimings {
                        steer_ns: best.steer_ns.min(run.timings.steer_ns),
                        shard_ns: best
                            .shard_ns
                            .iter()
                            .zip(&run.timings.shard_ns)
                            .map(|(&a, &b)| a.min(b))
                            .collect(),
                        merge_ns: best.merge_ns.min(run.timings.merge_ns),
                    },
                });
                merged = Some(run.merged);
            }
            let timings = timings.expect("TIMING_REPS >= 1");
            let merged = merged.expect("TIMING_REPS >= 1");
            assert_eq!(
                merged.len(),
                merged_len,
                "{name}@{count}: merge lost packets"
            );

            // Pass 3 — threaded wall clock, asserted bit-identical to the
            // sequential merge (scheduling cannot leak into outputs).
            let mut threaded_sw = ShardedSwitch::new_slot(&ingress, &egress, cfg)
                .expect("compiled pipelines are slot-executable");
            let t = Instant::now();
            let threaded = threaded_sw
                .run(&trace)
                .collect()
                .expect("no faults injected in the scaling sweep");
            let wall_ns = t.elapsed().as_nanos();
            assert_eq!(
                threaded, merged,
                "{name}@{count}: threaded run diverged from sequential merge"
            );

            ShardMeasurement {
                workload: name.to_string(),
                packets: n,
                requested: count,
                effective,
                wall_ns,
                timings,
                tier,
                fallback,
            }
        })
        .collect()
}

/// One E12 chaos scenario's verified outcome: what was injected, what the
/// supervisor reported, and where every offered packet went.
///
/// Like every other row in this harness, a recorded outcome is a
/// correctness witness — [`chaos_suite`] asserts the failure-model
/// invariants (no hang, typed error, salvage-equals-serial, conservation)
/// before returning it.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Scenario id (`kill_worker`, `stall_worker`, `overload_shed`,
    /// `bit_flip`).
    pub scenario: String,
    /// Workload (ingress algorithm) name.
    pub workload: String,
    /// Packets offered.
    pub packets: usize,
    /// Worker shards in the run.
    pub shards: usize,
    /// `fault` if the run returned [`banzai::SwitchError::Fault`], else `ok`.
    pub outcome: String,
    /// The failed shard, when the run faulted.
    pub faulted_shard: Option<usize>,
    /// Rendered [`banzai::FaultCause`] (or `none`).
    pub cause: String,
    /// Packets whose outputs were delivered (merged + salvaged prefixes).
    pub transmitted: u64,
    /// Packets under typed drop counters (queue-full / parse /
    /// backpressure shed).
    pub dropped: u64,
    /// Packets attributed to the fault by the salvage accounting.
    pub lost_in_fault: u64,
    /// Shards that survived and drained cleanly.
    pub survivors: usize,
    /// Wall-clock nanoseconds of the supervised run (the no-hang number:
    /// bounded by the watchdog, not by the injected stall).
    pub wall_ns: u128,
}

impl ChaosOutcome {
    /// `offered == transmitted + dropped + lost_in_fault` (asserted by
    /// [`chaos_suite`]; recorded so the JSON self-documents).
    pub fn conserved(&self) -> bool {
        self.packets as u64 == self.transmitted + self.dropped + self.lost_in_fault
    }
}

/// Builds a sharded switch whose shards are armed with `faults` — the
/// constructor-driven injection path (`ShardedSwitch::new_with` +
/// [`FaultyEngine`]).
fn armed_sharded(
    ingress: &banzai::AtomPipeline,
    egress: &banzai::AtomPipeline,
    cfg: ShardConfig,
    faults: &FaultPlan,
) -> ShardedSwitch<FaultyEngine<SlotMachine>> {
    ShardedSwitch::new_with(ingress, egress, cfg, |s, ing, eg, cap| {
        let i = FaultyEngine::with_faults(ing, faults.faults_for(s).to_vec())?;
        let e = <FaultyEngine<SlotMachine> as banzai::PipelineEngine>::build(eg)?;
        Ok(Switch::from_engines(i, e, cap))
    })
    .expect("compiled pipelines are slot-executable")
}

/// E12 — the chaos/overload suite: four fault-injection scenarios against
/// the supervised sharded switch on a real Table 4 workload, each
/// asserting the failure-model contract before its outcome is recorded:
///
/// 1. **kill_worker** — panic one shard's engine mid-trace: the run must
///    return a typed [`banzai::SwitchError::Fault`] naming the shard, packet, and
///    payload; every surviving shard's salvaged output *and state* must be
///    bit-identical to the serial switch restricted to its flows; the
///    accounting must balance exactly.
/// 2. **stall_worker** — wedge a worker past the watchdog: the caller
///    gets a typed `Stall` error in bounded time (never hangs, never joins
///    the wedged thread) and the books still balance.
/// 3. **overload_shed** — a slow worker under [`Backpressure::Shed`]:
///    the run *succeeds*, overload is counted under the backpressure drop
///    reason, and transmitted + dropped equals offered.
/// 4. **bit_flip** — silent single-bit corruption: not a fault (nothing
///    to supervise), but the divergence from the clean run is observable
///    and conservation still holds — the boundary of the failure model.
///
/// # Panics
///
/// Panics if any scenario violates its invariant — a returned outcome is
/// a correctness witness, same as every other row in this harness.
pub fn chaos_suite(name: &str, n: usize, seed: u64) -> Vec<ChaosOutcome> {
    const SHARDS: usize = 4;
    const CAPACITY: usize = 512;
    let ingress = compile_least(name);
    let egress = banzai::AtomPipeline::passthrough("egress");
    let trace = algorithms::by_name(name).unwrap().trace(n, seed);

    let mut serial = Switch::new_slot(&ingress, &egress, CAPACITY)
        .expect("compiled pipelines are slot-executable");
    let serial_out = serial
        .run(&trace)
        .collect()
        .expect("slice-backed sources cannot fail mid-stream");

    let probe = ShardedSwitch::new_slot(&ingress, &egress, ShardConfig::new(SHARDS))
        .expect("compiled pipelines are slot-executable");
    assert_eq!(
        probe.plan().effective(),
        SHARDS,
        "{name}: chaos suite needs a partitionable workload ({})",
        probe.plan()
    );
    let assignment: Vec<usize> = trace
        .iter()
        .enumerate()
        .map(|(i, p)| probe.plan().steer(i, p))
        .collect();
    let offered_to = |s: usize| assignment.iter().filter(|&&sh| sh == s).count() as u64;
    // Victim: the busiest shard (guaranteed nonempty), killed one third in.
    let victim = (0..SHARDS)
        .max_by_key(|&s| offered_to(s))
        .expect("SHARDS > 0");
    let mut outcomes = Vec::new();

    // 1. kill_worker ------------------------------------------------------
    {
        let kill_at = offered_to(victim) / 3;
        let cfg = ShardConfig::new(SHARDS).with_capacity(CAPACITY);
        let mut sw = armed_sharded(
            &ingress,
            &egress,
            cfg,
            &FaultPlan::kill(SHARDS, victim, kill_at),
        );
        let t = Instant::now();
        let err = sw
            .run(&trace)
            .collect()
            .expect_err("an armed panic must surface as an error");
        let wall_ns = t.elapsed().as_nanos();
        let report = err.fault().expect("worker faults carry a report").clone();

        let failure = &report.failures[0];
        assert_eq!(failure.shard, victim, "{name}: wrong shard blamed");
        assert!(
            failure.packet.is_some(),
            "{name}: fault packet not recovered"
        );
        assert!(
            matches!(&failure.cause, banzai::FaultCause::Panic(p)
                if p.contains(banzai::fault::INJECTED_PANIC_MARKER)),
            "{name}: cause is not the injected panic: {}",
            failure.cause
        );
        for s in report.survivors() {
            let salvage = report.shard(s).expect("salvage covers every shard");
            // Outputs: the serial stream restricted to this shard's flows.
            let mut cursor = 0usize;
            for (i, &shard) in assignment.iter().enumerate() {
                if shard != s {
                    continue;
                }
                assert_eq!(
                    salvage.output[cursor], serial_out[i],
                    "{name}: survivor {s} output diverged at input {i}"
                );
                cursor += 1;
            }
            assert_eq!(salvage.output.len(), cursor, "{name}: survivor {s} length");
            // State: bit-identical to a serial run over exactly this
            // shard's packet subsequence.
            let sub: Vec<Packet> = assignment
                .iter()
                .enumerate()
                .filter(|&(_, &sh)| sh == s)
                .map(|(i, _)| trace[i].clone())
                .collect();
            let mut twin = Switch::new_slot(&ingress, &egress, CAPACITY)
                .expect("compiled pipelines are slot-executable");
            twin.run(&sub)
                .for_each(|_| {})
                .expect("slice-backed sources cannot fail mid-stream");
            let (ing_state, _) = salvage.state.as_ref().expect("survivors report state");
            assert_eq!(
                ing_state,
                &twin.export_ingress_state(),
                "{name}: survivor {s} state diverged from the serial prefix"
            );
        }
        assert!(
            report.accounting.conserved(),
            "{name}: {}",
            report.accounting
        );
        outcomes.push(ChaosOutcome {
            scenario: "kill_worker".into(),
            workload: name.into(),
            packets: n,
            shards: SHARDS,
            outcome: "fault".into(),
            faulted_shard: Some(victim),
            cause: failure.cause.to_string(),
            transmitted: report.accounting.transmitted,
            dropped: report.accounting.dropped,
            lost_in_fault: report.accounting.lost_in_fault,
            survivors: report.survivors().len(),
            wall_ns,
        });
    }

    // 2. stall_worker -----------------------------------------------------
    {
        const WATCHDOG_MS: u64 = 150;
        let mut faults = FaultPlan::none(SHARDS);
        faults.push(victim, FaultSpec::stall_at(0, 600));
        let cfg = ShardConfig::new(SHARDS)
            .with_capacity(CAPACITY)
            .with_batch(64)
            .with_ring(1)
            .with_watchdog_ms(WATCHDOG_MS);
        let mut sw = armed_sharded(&ingress, &egress, cfg, &faults);
        let t = Instant::now();
        let err = sw
            .run(&trace)
            .collect()
            .expect_err("a stall past the watchdog must surface as an error");
        let wall_ns = t.elapsed().as_nanos();
        assert!(
            wall_ns < 5_000_000_000,
            "{name}: supervisor hung on a wedged worker ({wall_ns} ns)"
        );
        let report = err.fault().expect("worker faults carry a report").clone();
        let failure = report
            .failures
            .iter()
            .find(|f| f.shard == victim)
            .expect("the wedged shard must be reported");
        assert!(
            matches!(
                failure.cause,
                banzai::FaultCause::Stall {
                    watchdog_ms: WATCHDOG_MS
                }
            ),
            "{name}: expected a watchdog stall, got {}",
            failure.cause
        );
        assert!(
            report.accounting.conserved(),
            "{name}: {}",
            report.accounting
        );
        outcomes.push(ChaosOutcome {
            scenario: "stall_worker".into(),
            workload: name.into(),
            packets: n,
            shards: SHARDS,
            outcome: "fault".into(),
            faulted_shard: Some(victim),
            cause: failure.cause.to_string(),
            transmitted: report.accounting.transmitted,
            dropped: report.accounting.dropped,
            lost_in_fault: report.accounting.lost_in_fault,
            survivors: report.survivors().len(),
            wall_ns,
        });
    }

    // 3. overload_shed ----------------------------------------------------
    {
        let mut faults = FaultPlan::none(SHARDS);
        faults.push(victim, FaultSpec::stall_at(0, 200));
        let cfg = ShardConfig::new(SHARDS)
            .with_capacity(CAPACITY)
            .with_batch(16)
            .with_ring(1)
            .with_backpressure(Backpressure::Shed);
        let mut sw = armed_sharded(&ingress, &egress, cfg, &faults);
        let t = Instant::now();
        let out = sw
            .run(&trace)
            .collect()
            .expect("shedding is an overload policy, not a fault");
        let wall_ns = t.elapsed().as_nanos();
        let shed = sw.drop_counters().backpressure();
        assert!(
            shed > 0,
            "{name}: a 200ms stall against a 1-batch ring must shed"
        );
        assert_eq!(
            out.len() as u64 + sw.drops(),
            n as u64,
            "{name}: shed run out of balance"
        );
        outcomes.push(ChaosOutcome {
            scenario: "overload_shed".into(),
            workload: name.into(),
            packets: n,
            shards: SHARDS,
            outcome: "ok".into(),
            faulted_shard: None,
            cause: "none".into(),
            transmitted: out.len() as u64,
            dropped: sw.drops(),
            lost_in_fault: 0,
            survivors: SHARDS,
            wall_ns,
        });
    }

    // 4. bit_flip ---------------------------------------------------------
    {
        let field = trace[0]
            .field_names()
            .min()
            .expect("trace packets carry fields")
            .to_string();
        let mut faults = FaultPlan::none(SHARDS);
        faults.push(
            victim,
            FaultSpec::bit_flip_at(offered_to(victim) / 2, &field, 0),
        );
        let cfg = ShardConfig::new(SHARDS).with_capacity(CAPACITY);

        let mut clean = armed_sharded(&ingress, &egress, cfg.clone(), &FaultPlan::none(SHARDS));
        let clean_out = clean.run(&trace).collect().expect("no faults armed");
        let mut sw = armed_sharded(&ingress, &egress, cfg, &faults);
        let t = Instant::now();
        let out = sw
            .run(&trace)
            .collect()
            .expect("silent corruption is invisible to the supervisor");
        let wall_ns = t.elapsed().as_nanos();
        assert_eq!(out.len(), clean_out.len(), "{name}: bit flip lost packets");
        assert_ne!(
            out, clean_out,
            "{name}: flipping `{field}` bit 0 must be observable"
        );
        assert_eq!(
            out.len() as u64 + sw.drops(),
            n as u64,
            "{name}: bit-flip run out of balance"
        );
        outcomes.push(ChaosOutcome {
            scenario: "bit_flip".into(),
            workload: name.into(),
            packets: n,
            shards: SHARDS,
            outcome: "ok".into(),
            faulted_shard: None,
            cause: format!("bit_flip({field}, bit 0)"),
            transmitted: out.len() as u64,
            dropped: sw.drops(),
            lost_in_fault: 0,
            survivors: SHARDS,
            wall_ns,
        });
    }

    for o in &outcomes {
        assert!(o.conserved(), "{}: {:?} out of balance", o.scenario, o);
    }
    outcomes
}

/// The E13 scheduling disciplines, in emission order.
pub const SCHED_DISCIPLINES: [&str; 3] = ["wfq", "strict_priority", "shaping"];

/// One maximum-size packet (trace lengths are drawn from 64..1500): the
/// fairness slack WFQ is allowed, same bound as `tests/scheduling.rs`.
const SCHED_MAX_PKT: i64 = 1500;

/// Stateful egress for the scheduling runs: prefix sums over the
/// departure sequence, so any order or timing divergence between engines
/// (or between serial and sharded) corrupts `sum` and the exported
/// `total_sojourn` register — the departure-order-sensitive witness.
const SCHED_EGRESS: &str = "struct P { int enq_ts; int now; int qdepth; int soj; int sum; };\n\
                            int total_sojourn = 0;\n\
                            void sojourn(struct P pkt) {\n\
                              pkt.soj = pkt.now - pkt.enq_ts;\n\
                              total_sojourn = total_sojourn + pkt.soj;\n\
                              pkt.sum = total_sojourn;\n\
                            }";

/// One E13 scheduling workload's timed, verified comparison of the two
/// engines driving the programmable scheduler.
#[derive(Debug, Clone)]
pub struct SchedMeasurement {
    /// Discipline name (one of [`SCHED_DISCIPLINES`]).
    pub sched: String,
    /// Packets offered to the scheduler.
    pub packets: usize,
    /// Packets transmitted (== `packets`: E13 runs at full capacity).
    pub transmitted: u64,
    /// Wall-clock nanoseconds for the map-based reference path.
    pub map_ns: u128,
    /// Wall-clock nanoseconds for the slot-compiled fast path.
    pub slot_ns: u128,
}

impl SchedMeasurement {
    /// Packets per second through the map-based reference path.
    pub fn map_pps(&self) -> f64 {
        self.packets as f64 / (self.map_ns as f64 / 1e9)
    }

    /// Packets per second through the slot-compiled fast path.
    pub fn slot_pps(&self) -> f64 {
        self.packets as f64 / (self.slot_ns as f64 / 1e9)
    }

    /// Fast-path speedup over the reference path.
    pub fn speedup(&self) -> f64 {
        self.map_ns as f64 / self.slot_ns.max(1) as f64
    }
}

/// Rank transaction, scheduler spec, and trace for one E13 discipline.
fn sched_setup(
    discipline: &str,
    n: usize,
    seed: u64,
) -> (banzai::AtomPipeline, SchedSpec, Vec<Packet>) {
    match discipline {
        "wfq" => {
            // Flow-major burst: the most unfair arrival order; stfq's
            // `start` ranks must drain it byte-by-byte fair.
            const FLOWS: usize = 32;
            (
                compile_least("stfq"),
                SchedSpec::Pifo {
                    rank: "start".into(),
                },
                algorithms::sched::backlogged_burst(FLOWS, n.div_ceil(FLOWS), seed),
            )
        }
        "strict_priority" => (
            compile_least("stfq"),
            SchedSpec::Priority {
                class: "class".into(),
                rank: "start".into(),
            },
            algorithms::sched::classed_stfq_trace(n, 4, seed),
        ),
        "shaping" => (
            domino_compiler::compile(
                algorithms::sched::PACER_SOURCE,
                &Target::banzai(banzai::AtomKind::Nested),
            )
            .expect("pacer compiles on Nested"),
            SchedSpec::Shaping { rank: "dl".into() },
            algorithms::sched::pacer_trace(n, seed),
        ),
        other => panic!("unknown scheduling discipline `{other}`"),
    }
}

/// The discipline's scheduling invariant, checked over the verified
/// departure sequence before the measurement is recorded.
fn assert_sched_invariants(discipline: &str, deps: &[SchedDeparture]) {
    match discipline {
        "wfq" => {
            // SFQ fairness: every pair of still-backlogged flows stays
            // within one maximum packet of served bytes at every
            // departure (equivalently max-min over backlogged flows).
            let flows = deps
                .iter()
                .map(|d| d.pkt.expect("flow") as usize + 1)
                .max()
                .unwrap_or(0);
            let mut remaining = vec![0usize; flows];
            for d in deps {
                remaining[d.pkt.expect("flow") as usize] += 1;
            }
            let mut served = vec![0i64; flows];
            for d in deps {
                let flow = d.pkt.expect("flow") as usize;
                served[flow] += i64::from(d.pkt.expect("length"));
                remaining[flow] -= 1;
                let (mut lo, mut hi) = (i64::MAX, i64::MIN);
                for f in 0..flows {
                    if remaining[f] > 0 {
                        lo = lo.min(served[f]);
                        hi = hi.max(served[f]);
                    }
                }
                assert!(
                    lo == i64::MAX || hi - lo <= SCHED_MAX_PKT,
                    "wfq: backlogged flows {hi} vs {lo} bytes served — more \
                     than one max packet apart after arrival {}",
                    d.arrival
                );
            }
        }
        "strict_priority" => {
            // One co-resident burst, so priority is absolute: strictly
            // increasing (class, rank, arrival) departure order.
            for w in deps.windows(2) {
                assert!(
                    (w[0].key, w[0].arrival) < (w[1].key, w[1].arrival),
                    "strict_priority: departure order not increasing in \
                     (class, rank, arrival): {:?} then {:?}",
                    (w[0].key, w[0].arrival),
                    (w[1].key, w[1].arrival)
                );
            }
        }
        "shaping" => {
            // Never before the programmed earliest-departure cycle, link
            // serial (strictly increasing cycles), per-flow spacing at
            // least the pacer's GAP.
            let mut prev_cycle = i64::MIN;
            let mut last_dep: std::collections::HashMap<i32, i64> = Default::default();
            for d in deps {
                assert!(
                    d.departure >= d.key.rank,
                    "shaping: departed at {} before its EDT {}",
                    d.departure,
                    d.key.rank
                );
                assert!(d.departure > prev_cycle, "shaping: link not serial");
                prev_cycle = d.departure;
                let flow = d.pkt.expect("flow");
                if let Some(prev) = last_dep.insert(flow, d.departure) {
                    assert!(
                        d.departure - prev >= i64::from(algorithms::sched::PACER_GAP),
                        "shaping: flow {flow} released {prev} then {} — under GAP",
                        d.departure
                    );
                }
            }
        }
        other => panic!("unknown scheduling discipline `{other}`"),
    }
}

/// E13 — drives one scheduling discipline (rank transaction + PIFO)
/// through `switch.run(trace).scheduled().collect()` on both engines and returns the
/// timed, verified measurement. The queue capacity equals the trace
/// length, so the run is lossless and the whole burst is co-resident —
/// scheduling order is fully observable.
///
/// # Panics
///
/// Panics if the engines diverge on any departure (packet, key, arrival,
/// or departure cycle), counter, or exported state; if the untimed 4-way
/// sharded re-run is not bit-identical to serial; or if the departure
/// sequence violates the discipline's scheduling invariant — the
/// measurement doubles as a differential test and an invariant witness.
pub fn sched_workload(discipline: &str, n: usize, seed: u64) -> SchedMeasurement {
    let (ingress, spec, trace) = sched_setup(discipline, n, seed);
    let egress = domino_compiler::compile(SCHED_EGRESS, &Target::banzai(banzai::AtomKind::Raw))
        .expect("sojourn egress compiles on Raw");
    let capacity = trace.len();

    // Min over fresh-switch reps, for the same reason as `machine_workload`.
    let mut map_switch =
        Switch::new(ingress.clone(), egress.clone(), capacity).with_scheduler(spec.clone());
    let mut map_out = Vec::new();
    let mut map_ns = u128::MAX;
    for _ in 0..ENGINE_REPS {
        map_switch =
            Switch::new(ingress.clone(), egress.clone(), capacity).with_scheduler(spec.clone());
        let t = Instant::now();
        map_out = map_switch
            .run(&trace)
            .scheduled()
            .collect()
            .expect("slice-backed sources cannot fail mid-stream");
        map_ns = map_ns.min(t.elapsed().as_nanos());
    }

    let mut slot_switch = Switch::new_slot(&ingress, &egress, capacity)
        .expect("compiled pipelines are slot-executable")
        .with_scheduler(spec.clone());
    let mut slot_out = Vec::new();
    let mut slot_ns = u128::MAX;
    for _ in 0..ENGINE_REPS {
        slot_switch = Switch::new_slot(&ingress, &egress, capacity)
            .expect("compiled pipelines are slot-executable")
            .with_scheduler(spec.clone());
        let t = Instant::now();
        slot_out = slot_switch
            .run(&trace)
            .scheduled()
            .collect()
            .expect("slice-backed sources cannot fail mid-stream");
        slot_ns = slot_ns.min(t.elapsed().as_nanos());
    }

    assert_eq!(
        map_out, slot_out,
        "{discipline}: engines diverged on departures"
    );
    assert_eq!(
        map_switch.transmitted(),
        slot_switch.transmitted(),
        "{discipline}: transmit counts diverged"
    );
    assert_eq!(
        map_switch.drop_counters(),
        slot_switch.drop_counters(),
        "{discipline}: drop counters diverged"
    );
    assert_eq!(
        map_switch.export_ingress_state(),
        slot_switch.export_ingress_state(),
        "{discipline}: ingress state diverged"
    );
    assert_eq!(
        map_switch.export_egress_state(),
        slot_switch.export_egress_state(),
        "{discipline}: egress state diverged"
    );

    // The sharded scheduler must reproduce the serial run bit-for-bit
    // (untimed: this is the correctness witness, not the timing).
    let cfg = ShardConfig::new(4)
        .with_capacity(capacity)
        .with_scheduler(spec);
    let mut sharded = ShardedSwitch::new_slot(&ingress, &egress, cfg)
        .expect("compiled pipelines are slot-executable");
    let sharded_out = sharded
        .run(&trace)
        .scheduled()
        .collect()
        .expect("no faults armed");
    assert_eq!(
        sharded_out, slot_out,
        "{discipline}: sharded departures diverged from serial"
    );
    assert_eq!(
        sharded.drop_counters(),
        slot_switch.drop_counters().clone(),
        "{discipline}: sharded drop counters diverged"
    );
    assert_eq!(
        sharded.export_sched_egress_state().expect("sched ran"),
        slot_switch.export_egress_state(),
        "{discipline}: sharded egress state diverged"
    );

    assert_eq!(
        slot_out.len(),
        trace.len(),
        "{discipline}: lossless at full capacity"
    );
    assert_sched_invariants(discipline, &slot_out);

    SchedMeasurement {
        sched: discipline.to_string(),
        packets: trace.len(),
        transmitted: slot_switch.transmitted(),
        map_ns,
        slot_ns,
    }
}

/// One E14 streaming-ingestion run: the Figure-1 switch pulled from a
/// generator [`banzai::GenSource`] through the bounded-memory
/// `run(..).for_each(..)` path, with the process's peak RSS sampled
/// before and after.
///
/// The point of the row is the memory bound: `n` packets flow through
/// without ever materializing a `Vec<Packet>` on either side, so
/// [`StreamMeasurement::rss_growth_kb`] stays flat no matter how large
/// `n` is — the witness that the unified run API actually streams.
#[derive(Debug, Clone)]
pub struct StreamMeasurement {
    /// Packets offered by the generator source.
    pub packets: usize,
    /// Packets that reached the sink.
    pub transmitted: u64,
    /// Packets under typed drop counters.
    pub dropped: u64,
    /// Wall-clock nanoseconds for the streamed run.
    pub wall_ns: u128,
    /// Peak RSS (`VmHWM`) in KiB before the run, if readable.
    pub rss_before_kb: Option<u64>,
    /// Peak RSS (`VmHWM`) in KiB after the run, if readable.
    pub rss_after_kb: Option<u64>,
}

impl StreamMeasurement {
    /// Packets per second through the streamed path.
    pub fn pps(&self) -> f64 {
        self.packets as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }

    /// How much the process's peak RSS grew across the run, in KiB
    /// (`None` where `/proc/self/status` is unavailable).
    pub fn rss_growth_kb(&self) -> Option<u64> {
        Some(self.rss_after_kb?.saturating_sub(self.rss_before_kb?))
    }
}

/// The process's peak resident set size (`VmHWM`) in KiB, read from
/// `/proc/self/status`. `None` on platforms without procfs — callers
/// treat an unreadable high-water mark as "cannot assert", not a failure.
pub fn max_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// E14 — streams `n` generator-born flowlet packets through the
/// slot-compiled Figure-1 switch via `run(source).for_each(sink)`: no
/// input trace and no output vector ever exist, so memory stays flat at
/// any `n`. The sink folds a checksum so the compiler cannot elide the
/// packets; conservation (`offered == transmitted + dropped`) is asserted
/// before the measurement is returned.
///
/// The generator produces the same bursty flowlet mix as
/// `algorithms::workload::flowlet_trace`, but derives each packet
/// arithmetically from its index (splitmix-style), so it needs no
/// materialized trace and no RNG state proportional to `n`.
///
/// # Panics
///
/// Panics if the books do not balance or the source under-delivers.
pub fn stream_workload(n: usize, seed: u64) -> StreamMeasurement {
    let ingress = compile_least("flowlet");
    let egress = banzai::AtomPipeline::passthrough("egress");
    let mut sw = Switch::new_slot(&ingress, &egress, 512)
        .expect("compiled pipelines are slot-executable")
        .with_drain_period(3);

    let rss_before_kb = max_rss_kb();
    let mut checksum = 0u64;
    let t = Instant::now();
    let stats = sw
        .run(banzai::GenSource::with_len(n as u64, move |i| {
            Some(flowlet_stream_packet(i, seed))
        }))
        .for_each(|pkt| {
            checksum ^= pkt.get("arrival").unwrap_or(0) as u64;
        })
        .expect("generator sources cannot fail mid-stream");
    let wall_ns = t.elapsed().as_nanos();
    let rss_after_kb = max_rss_kb();

    assert_eq!(stats.offered, n as u64, "stream: source under-delivered");
    assert_eq!(
        stats.transmitted + sw.drops(),
        n as u64,
        "stream: books out of balance"
    );

    StreamMeasurement {
        packets: n,
        transmitted: stats.transmitted,
        dropped: sw.drops(),
        wall_ns,
        rss_before_kb,
        rss_after_kb,
    }
}

/// The `i`-th packet of the E14 streaming workload: the flowlet-trace
/// field mix (bursty arrivals over a small flow space) derived purely
/// from the packet index, so any suffix of the stream can be regenerated
/// without storing anything.
fn flowlet_stream_packet(i: u64, seed: u64) -> Packet {
    // splitmix64: a full-avalanche index hash, the standard trick for
    // stateless deterministic streams.
    let mut z = i.wrapping_add(seed).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // ~15% of packets open a gap past the flowlet threshold; the clock is
    // index-derived (mean inter-arrival ≈ 4.5) so it needs no state.
    let gap = if z % 100 < 15 { 20 } else { 2 };
    Packet::new()
        .with("sport", (z % 16) as i32)
        .with("dport", 80 + ((z >> 8) % 4) as i32)
        .with("arrival", (i / 2) as i32 * 9 / 2 + gap)
        .with("new_hop", 0)
        .with("next_hop", 0)
        .with("id", 0)
}

/// The modeled speedup of each sweep row over the 1-shard row of the same
/// workload (`None` when no 1-shard row exists).
pub fn scaling_speedup(rows: &[ShardMeasurement], row: &ShardMeasurement) -> Option<f64> {
    let base = rows
        .iter()
        .find(|r| r.workload == row.workload && r.requested == 1)?;
    Some(base.critical_ns() as f64 / row.critical_ns().max(1) as f64)
}

/// One parsed row of a committed `BENCH_throughput.json` — just the
/// fields the regression gate compares.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRow {
    /// Workload name.
    pub name: String,
    /// Committed slot-over-map speedup.
    pub speedup: f64,
}

/// Extracts `(name, speedup)` pairs from a committed baseline document.
///
/// A deliberately minimal line scanner, not a JSON parser: the document
/// is emitted by [`render_json`] with one key per line, and the E10
/// scaling rows use the key `workload` (not `name`), so only E9 workload
/// rows match.
pub fn parse_baseline(doc: &str) -> Vec<BaselineRow> {
    let mut rows = Vec::new();
    let mut name: Option<String> = None;
    for line in doc.lines() {
        let t = line.trim().trim_end_matches(',');
        if let Some(rest) = t.strip_prefix("\"name\": \"") {
            name = rest.strip_suffix('"').map(str::to_string);
        } else if let Some(rest) = t.strip_prefix("\"speedup\": ") {
            if let (Some(n), Ok(v)) = (name.take(), rest.parse::<f64>()) {
                rows.push(BaselineRow {
                    name: n,
                    speedup: v,
                });
            }
        }
    }
    rows
}

/// The CI perf-regression gate: every workload in the committed baseline
/// must be present in the fresh run and keep at least `tolerance` × its
/// committed slot speedup. Returns one message per violation (empty =
/// gate passes). Iterating the *baseline* means a workload cannot be
/// silently un-gated by renaming or dropping it from the harness; fresh
/// workloads not yet in the baseline are not gated. Speedups are
/// host-relative ratios, so the gate is meaningful across runner
/// hardware; `tolerance` absorbs measurement noise.
pub fn check_regressions(
    fresh: &[Measurement],
    baseline: &[BaselineRow],
    tolerance: f64,
) -> Vec<String> {
    baseline
        .iter()
        .filter_map(|base| {
            let Some(m) = fresh.iter().find(|m| m.name == base.name) else {
                return Some(format!(
                    "{}: workload is in the committed baseline but missing from \
                     the fresh run — renamed or dropped? (update the baseline \
                     deliberately instead)",
                    base.name
                ));
            };
            let floor = base.speedup * tolerance;
            if m.speedup() < floor {
                Some(format!(
                    "{}: slot speedup {:.2}x regressed below {:.2}x \
                     (tolerance {tolerance} x committed {:.2}x)",
                    m.name,
                    m.speedup(),
                    floor,
                    base.speedup
                ))
            } else {
                None
            }
        })
        .collect()
}

/// One parsed E10 scaling row of a committed `BENCH_throughput.json` —
/// the fields the scaling regression gate compares.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingBaselineRow {
    /// Workload name.
    pub workload: String,
    /// Shards requested in the committed row.
    pub shards: usize,
    /// Shards the committed plan actually granted. This is the
    /// un-fallback gate: a `Replicable` workload that regresses to a
    /// 1-shard fallback shows up here as `fresh.effective <
    /// base.effective` — an exact structural check, immune to timing
    /// noise.
    pub effective: usize,
    /// Committed modeled speedup over the workload's own 1-shard row
    /// (`None` for the 1-shard row itself).
    pub speedup: Option<f64>,
}

/// Extracts the E10 scaling rows from a committed baseline document.
///
/// The same deliberately minimal line scanner as [`parse_baseline`]:
/// only scaling rows carry the `effective_shards` key, and a row is
/// emitted when its `modeled_speedup_vs_1shard` line arrives — chaos
/// rows have `workload`/`shards` but neither of those keys, so they
/// never emit.
pub fn parse_scaling_baseline(doc: &str) -> Vec<ScalingBaselineRow> {
    let mut rows = Vec::new();
    let mut workload: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut effective: Option<usize> = None;
    for line in doc.lines() {
        let t = line.trim().trim_end_matches(',');
        if let Some(rest) = t.strip_prefix("\"workload\": \"") {
            workload = rest.strip_suffix('"').map(str::to_string);
        } else if let Some(rest) = t.strip_prefix("\"shards\": ") {
            shards = rest.parse().ok();
        } else if let Some(rest) = t.strip_prefix("\"effective_shards\": ") {
            effective = rest.parse().ok();
        } else if let Some(rest) = t.strip_prefix("\"modeled_speedup_vs_1shard\": ") {
            if let (Some(w), Some(s), Some(e)) = (workload.take(), shards.take(), effective.take())
            {
                rows.push(ScalingBaselineRow {
                    workload: w,
                    shards: s,
                    effective: e,
                    speedup: rest.parse().ok(),
                });
            }
        }
    }
    rows
}

/// The E10 half of the CI gate: every committed scaling row must be
/// present in the fresh sweep, keep its effective shard count, and keep
/// at least `tolerance` × its committed modeled speedup. Returns one
/// message per violation (empty = gate passes).
///
/// The effective-shards check is exact (no tolerance): a workload that
/// the planner un-partitions — say `heavy_hitters` regressing from the
/// `Replicable` tier to a 1-shard fallback — fails the build even if
/// the 1-shard run happens to be fast.
pub fn check_scaling_regressions(
    fresh: &[ShardMeasurement],
    baseline: &[ScalingBaselineRow],
    tolerance: f64,
) -> Vec<String> {
    baseline
        .iter()
        .filter_map(|base| {
            let Some(m) = fresh
                .iter()
                .find(|m| m.workload == base.workload && m.requested == base.shards)
            else {
                return Some(format!(
                    "{}@{}: scaling row is in the committed baseline but missing \
                     from the fresh sweep — renamed or dropped? (update the \
                     baseline deliberately instead)",
                    base.workload, base.shards
                ));
            };
            if m.effective < base.effective {
                return Some(format!(
                    "{}@{}: plan granted {} effective shard(s), committed baseline \
                     granted {} — the workload regressed to a coarser partition \
                     tier ({}{})",
                    base.workload,
                    base.shards,
                    m.effective,
                    base.effective,
                    m.tier,
                    m.fallback
                        .as_deref()
                        .map(|why| format!(": {why}"))
                        .unwrap_or_default()
                ));
            }
            let (Some(base_speedup), Some(fresh_speedup)) =
                (base.speedup, scaling_speedup(fresh, m))
            else {
                return None; // 1-shard anchor rows carry no speedup
            };
            let floor = base_speedup * tolerance;
            if fresh_speedup < floor {
                Some(format!(
                    "{}@{}: modeled speedup {fresh_speedup:.2}x regressed below \
                     {floor:.2}x (tolerance {tolerance} x committed {base_speedup:.2}x)",
                    base.workload, base.shards
                ))
            } else {
                None
            }
        })
        .collect()
}

/// One parsed E13 scheduling row of a committed `BENCH_throughput.json` —
/// the fields the sched regression gate compares.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedBaselineRow {
    /// Discipline name.
    pub sched: String,
    /// Committed slot-over-map speedup for the scheduling run.
    pub speedup: f64,
}

/// Extracts the E13 scheduling rows from a committed baseline document.
///
/// The same deliberately minimal line scanner as [`parse_baseline`]: only
/// sched rows carry the `sched` key, and a row is emitted when its
/// `speedup` line arrives with a pending `sched` name — E9 workload rows
/// pair their `speedup` with `name` instead, so neither scanner sees the
/// other's rows.
pub fn parse_sched_baseline(doc: &str) -> Vec<SchedBaselineRow> {
    let mut rows = Vec::new();
    let mut sched: Option<String> = None;
    for line in doc.lines() {
        let t = line.trim().trim_end_matches(',');
        if let Some(rest) = t.strip_prefix("\"sched\": \"") {
            sched = rest.strip_suffix('"').map(str::to_string);
        } else if let Some(rest) = t.strip_prefix("\"speedup\": ") {
            if let (Some(s), Ok(v)) = (sched.take(), rest.parse::<f64>()) {
                rows.push(SchedBaselineRow {
                    sched: s,
                    speedup: v,
                });
            }
        }
    }
    rows
}

/// The E13 half of the CI gate: every scheduling discipline in the
/// committed baseline must be present in the fresh run and keep at least
/// `tolerance` × its committed slot speedup. Returns one message per
/// violation (empty = gate passes). Like [`check_regressions`], iterating
/// the baseline means a discipline cannot be silently un-gated by
/// dropping it from the harness.
pub fn check_sched_regressions(
    fresh: &[SchedMeasurement],
    baseline: &[SchedBaselineRow],
    tolerance: f64,
) -> Vec<String> {
    baseline
        .iter()
        .filter_map(|base| {
            let Some(m) = fresh.iter().find(|m| m.sched == base.sched) else {
                return Some(format!(
                    "sched/{}: discipline is in the committed baseline but missing \
                     from the fresh run — renamed or dropped? (update the baseline \
                     deliberately instead)",
                    base.sched
                ));
            };
            let floor = base.speedup * tolerance;
            if m.speedup() < floor {
                Some(format!(
                    "sched/{}: slot speedup {:.2}x regressed below {:.2}x \
                     (tolerance {tolerance} x committed {:.2}x)",
                    m.sched,
                    m.speedup(),
                    floor,
                    base.speedup
                ))
            } else {
                None
            }
        })
        .collect()
}

/// Renders the measurements as the machine-readable `BENCH_throughput.json`
/// document (hand-rolled: the build environment is offline, no serde).
///
/// The `workloads` section (E9, keyed `name`) is what
/// [`parse_baseline`] reads back for the regression gate; the `scaling`
/// section (E10, keyed `workload`) records the shard sweep with both
/// wall-clock and critical-path numbers, plus `host_cores` so readers can
/// judge which of the two is meaningful on the recording machine. The
/// `chaos` section (E12, keyed `scenario` — deliberately *not* `name`, so
/// the baseline scanner skips it) records the fault-injection outcomes.
/// The `sched` section (E13, keyed `sched`) records the scheduling
/// disciplines and is what [`parse_sched_baseline`] reads back. The
/// `stream` section (E14, keyed `mode`) records the bounded-memory
/// streaming runs with their peak-RSS growth; no scanner reads it back —
/// its gate is the hard RSS assertion in the binary, not a speedup ratio.
pub fn render_json(
    measurements: &[Measurement],
    scaling: &[ShardMeasurement],
    chaos: &[ChaosOutcome],
    sched: &[SchedMeasurement],
    stream: &[StreamMeasurement],
    host_cores: usize,
) -> String {
    let rows: Vec<String> = measurements
        .iter()
        .map(|m| {
            format!(
                "    {{\n      \"name\": \"{}\",\n      \"packets\": {},\n      \
                 \"map_ns\": {},\n      \"slot_ns\": {},\n      \
                 \"map_pkts_per_sec\": {:.0},\n      \"slot_pkts_per_sec\": {:.0},\n      \
                 \"speedup\": {:.2},\n      \"identical\": true\n    }}",
                m.name,
                m.packets,
                m.map_ns,
                m.slot_ns,
                m.map_pps(),
                m.slot_pps(),
                m.speedup()
            )
        })
        .collect();
    let scaling_rows: Vec<String> = scaling
        .iter()
        .map(|s| {
            let shard_ns: Vec<String> =
                s.timings.shard_ns.iter().map(|ns| ns.to_string()).collect();
            let speedup = scaling_speedup(scaling, s)
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "null".to_string());
            let fallback = s
                .fallback
                .as_deref()
                .map(|why| format!("\"{}\"", why.replace('"', "'")))
                .unwrap_or_else(|| "null".to_string());
            format!(
                "    {{\n      \"workload\": \"{}\",\n      \"packets\": {},\n      \
                 \"shards\": {},\n      \"effective_shards\": {},\n      \
                 \"tier\": \"{}\",\n      \
                 \"wall_ns\": {},\n      \"steer_ns\": {},\n      \"merge_ns\": {},\n      \
                 \"shard_ns\": [{}],\n      \"critical_ns\": {},\n      \
                 \"modeled_pkts_per_sec\": {:.0},\n      \"wall_pkts_per_sec\": {:.0},\n      \
                 \"modeled_speedup_vs_1shard\": {},\n      \"fallback\": {},\n      \
                 \"identical\": true\n    }}",
                s.workload,
                s.packets,
                s.requested,
                s.effective,
                s.tier,
                s.wall_ns,
                s.timings.steer_ns,
                s.timings.merge_ns,
                shard_ns.join(", "),
                s.critical_ns(),
                s.modeled_pps(),
                s.wall_pps(),
                speedup,
                fallback
            )
        })
        .collect();
    let chaos_rows: Vec<String> = chaos
        .iter()
        .map(|c| {
            let shard = c
                .faulted_shard
                .map(|s| s.to_string())
                .unwrap_or_else(|| "null".to_string());
            format!(
                "    {{\n      \"scenario\": \"{}\",\n      \"workload\": \"{}\",\n      \
                 \"packets\": {},\n      \"shards\": {},\n      \"outcome\": \"{}\",\n      \
                 \"faulted_shard\": {},\n      \"cause\": \"{}\",\n      \
                 \"transmitted\": {},\n      \"dropped\": {},\n      \
                 \"lost_in_fault\": {},\n      \"survivors\": {},\n      \
                 \"wall_ns\": {},\n      \"conserved\": {}\n    }}",
                c.scenario,
                c.workload,
                c.packets,
                c.shards,
                c.outcome,
                shard,
                c.cause.replace('"', "'").replace('\n', " "),
                c.transmitted,
                c.dropped,
                c.lost_in_fault,
                c.survivors,
                c.wall_ns,
                c.conserved()
            )
        })
        .collect();
    let sched_rows: Vec<String> = sched
        .iter()
        .map(|m| {
            format!(
                "    {{\n      \"sched\": \"{}\",\n      \"packets\": {},\n      \
                 \"transmitted\": {},\n      \
                 \"map_ns\": {},\n      \"slot_ns\": {},\n      \
                 \"map_pkts_per_sec\": {:.0},\n      \"slot_pkts_per_sec\": {:.0},\n      \
                 \"speedup\": {:.2},\n      \"identical\": true\n    }}",
                m.sched,
                m.packets,
                m.transmitted,
                m.map_ns,
                m.slot_ns,
                m.map_pps(),
                m.slot_pps(),
                m.speedup()
            )
        })
        .collect();
    let stream_rows: Vec<String> = stream
        .iter()
        .map(|m| {
            let opt = |v: Option<u64>| v.map(|k| k.to_string()).unwrap_or_else(|| "null".into());
            format!(
                "    {{\n      \"mode\": \"generator\",\n      \"packets\": {},\n      \
                 \"transmitted\": {},\n      \"dropped\": {},\n      \"wall_ns\": {},\n      \
                 \"pkts_per_sec\": {:.0},\n      \"rss_before_kb\": {},\n      \
                 \"rss_after_kb\": {},\n      \"rss_growth_kb\": {}\n    }}",
                m.packets,
                m.transmitted,
                m.dropped,
                m.wall_ns,
                m.pps(),
                opt(m.rss_before_kb),
                opt(m.rss_after_kb),
                opt(m.rss_growth_kb())
            )
        })
        .collect();
    format!(
        "{{\n  \"suite\": \"throughput\",\n  \"engines\": [\"map\", \"slot\"],\n  \
         \"host_cores\": {},\n  \"workloads\": [\n{}\n  ],\n  \"scaling\": [\n{}\n  ],\n  \
         \"chaos\": [\n{}\n  ],\n  \"sched\": [\n{}\n  ],\n  \"stream\": [\n{}\n  ]\n}}\n",
        host_cores,
        rows.join(",\n"),
        scaling_rows.join(",\n"),
        chaos_rows.join(",\n"),
        sched_rows.join(",\n"),
        stream_rows.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_workload_verifies_and_measures() {
        let m = machine_workload("flowlet", 2_000, 0xBEEF);
        assert_eq!(m.packets, 2_000);
        assert!(m.map_ns > 0 && m.slot_ns > 0);
    }

    #[test]
    fn switch_workload_verifies_and_measures() {
        let m = switch_workload(1_500, 0xF00D);
        assert_eq!(m.name, "figure1_switch");
        assert!(m.map_ns > 0 && m.slot_ns > 0);
    }

    #[test]
    fn wire_workload_verifies_and_measures() {
        let m = wire_workload("flowlet", 1_500, 0xBEEF);
        assert_eq!(m.name, "wire_flowlet");
        assert_eq!(m.packets, 1_500);
        assert!(m.map_ns > 0 && m.slot_ns > 0);
    }

    #[test]
    fn wire_stress_accounts_for_every_frame() {
        let r = wire_stress(2_000, 0xF00D, 0.2);
        assert_eq!(r.frames, 2_000);
        let parse_drops: u64 = r.parse_drops.iter().map(|&(_, c)| c).sum();
        assert!(parse_drops > 0, "expected malformed frames to be dropped");
        assert_eq!(r.transmitted + r.queue_full + parse_drops, 2_000);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let m = Measurement {
            name: "flowlet".into(),
            packets: 10,
            map_ns: 100,
            slot_ns: 10,
        };
        let s = ShardMeasurement {
            workload: "flowlet".into(),
            packets: 10,
            requested: 2,
            effective: 2,
            wall_ns: 50,
            timings: banzai::ShardTimings {
                steer_ns: 5,
                shard_ns: vec![20, 25],
                merge_ns: 5,
            },
            tier: banzai::ShardTier::Exact,
            fallback: None,
        };
        let c = ChaosOutcome {
            scenario: "kill_worker".into(),
            workload: "flowlet".into(),
            packets: 10,
            shards: 4,
            outcome: "fault".into(),
            faulted_shard: Some(2),
            cause: "worker panicked: \"boom\"".into(),
            transmitted: 7,
            dropped: 1,
            lost_in_fault: 2,
            survivors: 3,
            wall_ns: 40,
        };
        let sm = SchedMeasurement {
            sched: "wfq".into(),
            packets: 10,
            transmitted: 10,
            map_ns: 80,
            slot_ns: 20,
        };
        let st = StreamMeasurement {
            packets: 10,
            transmitted: 9,
            dropped: 1,
            wall_ns: 100,
            rss_before_kb: Some(1000),
            rss_after_kb: Some(1004),
        };
        let doc = render_json(&[m], &[s], &[c], &[sm], &[st], 1);
        assert!(doc.contains("\"name\": \"flowlet\""), "{doc}");
        assert!(doc.contains("\"sched\": \"wfq\""), "{doc}");
        assert!(doc.contains("\"speedup\": 4.00"), "{doc}");
        assert!(doc.contains("\"speedup\": 10.00"), "{doc}");
        assert!(doc.contains("\"workload\": \"flowlet\""), "{doc}");
        assert!(doc.contains("\"tier\": \"Exact\""), "{doc}");
        assert!(doc.contains("\"critical_ns\": 25"), "{doc}");
        assert!(doc.contains("\"host_cores\": 1"), "{doc}");
        assert!(doc.contains("\"scenario\": \"kill_worker\""), "{doc}");
        assert!(doc.contains("\"faulted_shard\": 2"), "{doc}");
        assert!(doc.contains("\"conserved\": true"), "{doc}");
        // Quotes inside causes are sanitized so the document stays valid.
        assert!(doc.contains("worker panicked: 'boom'"), "{doc}");
        assert!(doc.contains("\"mode\": \"generator\""), "{doc}");
        assert!(doc.contains("\"rss_growth_kb\": 4"), "{doc}");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn stream_workload_balances_and_stays_bounded() {
        let m = stream_workload(50_000, 0xE14);
        assert_eq!(m.packets, 50_000);
        assert_eq!(m.transmitted + m.dropped, 50_000);
        assert!(m.wall_ns > 0);
        // procfs is available on every host this suite targets; if it
        // ever is not, the binary's RSS gate degrades to unasserted.
        if let Some(growth) = m.rss_growth_kb() {
            // 50k packets materialized twice (trace + outputs) would be
            // several MB; the streamed run must stay far under that.
            assert!(growth < 512 * 1024, "streamed run grew {growth} KiB");
        }
    }

    #[test]
    fn stream_generator_is_deterministic() {
        let a: Vec<Packet> = (0..64).map(|i| flowlet_stream_packet(i, 7)).collect();
        let b: Vec<Packet> = (0..64).map(|i| flowlet_stream_packet(i, 7)).collect();
        assert_eq!(a, b);
        let c: Vec<Packet> = (0..64).map(|i| flowlet_stream_packet(i, 8)).collect();
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn shard_sweep_verifies_and_scales_bookkeeping() {
        let rows = shard_sweep("flowlet", 3_000, 0xF10, &[1, 2]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].effective, 1);
        assert_eq!(rows[1].effective, 2);
        assert_eq!(rows[1].tier, banzai::ShardTier::Exact);
        assert!(rows[1].fallback.is_none());
        assert_eq!(rows[1].timings.shard_ns.len(), 2);
        assert!(scaling_speedup(&rows, &rows[1]).is_some());
    }

    #[test]
    fn shard_sweep_replicates_sketch_workloads() {
        // heavy_hitters carries a count-min sketch indexed by per-row
        // hashes: the exact tier rejects it, the replica tier shards it.
        let rows = shard_sweep("heavy_hitters", 2_000, 0xF12, &[1, 4]);
        assert_eq!(rows[1].effective, 4, "{:?}", rows[1].fallback);
        assert_eq!(rows[1].tier, banzai::ShardTier::Replicable);
        assert!(rows[1].fallback.is_none());
        assert_eq!(rows[1].timings.shard_ns.len(), 4);
    }

    #[test]
    fn shard_sweep_records_fallback_for_unpartitionable_state() {
        let rows = shard_sweep("rcp", 1_000, 0xF11, &[4]);
        assert_eq!(rows[0].effective, 1);
        assert_eq!(rows[0].tier, banzai::ShardTier::Fallback);
        // The diagnostic must name the tier decision: why the exact
        // tier rejected it AND why the replica tier rejected it.
        let why = rows[0].fallback.as_deref().unwrap();
        assert!(why.contains("not Exact-partitionable"), "{why}");
        assert!(why.contains("not Replicable"), "{why}");
        assert!(why.contains("scalar state"), "{why}");
    }

    #[test]
    fn chaos_suite_verifies_all_four_scenarios() {
        let outcomes = chaos_suite("flowlet", 2_000, 0xC405);
        let scenarios: Vec<&str> = outcomes.iter().map(|o| o.scenario.as_str()).collect();
        assert_eq!(
            scenarios,
            ["kill_worker", "stall_worker", "overload_shed", "bit_flip"]
        );
        for o in &outcomes {
            assert!(o.conserved(), "{:?}", o);
        }
        assert_eq!(outcomes[0].outcome, "fault");
        assert!(outcomes[0].lost_in_fault > 0, "a kill must cost packets");
        assert_eq!(outcomes[2].outcome, "ok");
        assert!(outcomes[2].dropped > 0, "shedding must count drops");
    }

    #[test]
    fn baseline_roundtrips_through_the_json_emitter() {
        let ms = vec![
            Measurement {
                name: "flowlet".into(),
                packets: 10,
                map_ns: 100,
                slot_ns: 10,
            },
            Measurement {
                name: "figure1_switch".into(),
                packets: 10,
                map_ns: 30,
                slot_ns: 20,
            },
        ];
        // Chaos rows ride in the same document but are keyed `scenario`,
        // not `name` — the baseline scanner must skip them.
        let chaos = vec![ChaosOutcome {
            scenario: "overload_shed".into(),
            workload: "flowlet".into(),
            packets: 10,
            shards: 4,
            outcome: "ok".into(),
            faulted_shard: None,
            cause: "none".into(),
            transmitted: 8,
            dropped: 2,
            lost_in_fault: 0,
            survivors: 4,
            wall_ns: 40,
        }];
        // …and sched rows are keyed `sched`, also skipped by this scanner.
        let sched = vec![SchedMeasurement {
            sched: "wfq".into(),
            packets: 10,
            transmitted: 10,
            map_ns: 90,
            slot_ns: 30,
        }];
        let parsed = parse_baseline(&render_json(&ms, &[], &chaos, &sched, &[], 1));
        assert_eq!(
            parsed,
            vec![
                BaselineRow {
                    name: "flowlet".into(),
                    speedup: 10.0
                },
                BaselineRow {
                    name: "figure1_switch".into(),
                    speedup: 1.5
                },
            ]
        );
    }

    #[test]
    fn regression_gate_trips_only_below_tolerance() {
        let baseline = vec![BaselineRow {
            name: "flowlet".into(),
            speedup: 20.0,
        }];
        let fresh_ok = Measurement {
            name: "flowlet".into(),
            packets: 10,
            map_ns: 110,
            slot_ns: 10, // 11x ≥ 0.5 × 20x
        };
        assert!(check_regressions(&[fresh_ok], &baseline, 0.5).is_empty());
        let fresh_bad = Measurement {
            name: "flowlet".into(),
            packets: 10,
            map_ns: 90,
            slot_ns: 10, // 9x < 0.5 × 20x
        };
        let failures = check_regressions(&[fresh_bad], &baseline, 0.5);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("regressed"), "{}", failures[0]);
        // Workloads absent from the baseline are not gated…
        let fresh_new = Measurement {
            name: "brand_new".into(),
            packets: 10,
            map_ns: 10,
            slot_ns: 10,
        };
        let failures = check_regressions(&[fresh_new], &baseline, 0.5);
        // …but a baseline workload missing from the fresh run trips the
        // gate: dropping/renaming a workload cannot silently un-gate it.
        assert_eq!(failures.len(), 1);
        assert!(
            failures[0].contains("missing from the fresh run"),
            "{}",
            failures[0]
        );
    }

    fn scaling_row(
        workload: &str,
        requested: usize,
        effective: usize,
        busy_ns: u128,
        tier: banzai::ShardTier,
    ) -> ShardMeasurement {
        ShardMeasurement {
            workload: workload.into(),
            packets: 10,
            requested,
            effective,
            wall_ns: busy_ns,
            timings: banzai::ShardTimings {
                steer_ns: 1,
                shard_ns: vec![busy_ns; effective],
                merge_ns: 1,
            },
            tier,
            fallback: None,
        }
    }

    #[test]
    fn scaling_baseline_roundtrips_through_the_json_emitter() {
        let rows = vec![
            scaling_row("heavy_hitters", 1, 1, 400, banzai::ShardTier::Replicable),
            scaling_row("heavy_hitters", 4, 4, 100, banzai::ShardTier::Replicable),
        ];
        // Chaos rows carry `workload` and `shards` keys too; the scanner
        // must not emit rows for them (they lack `effective_shards` and
        // `modeled_speedup_vs_1shard`).
        let chaos = vec![ChaosOutcome {
            scenario: "kill_worker".into(),
            workload: "flowlet".into(),
            packets: 10,
            shards: 4,
            outcome: "fault".into(),
            faulted_shard: Some(1),
            cause: "kill".into(),
            transmitted: 7,
            dropped: 1,
            lost_in_fault: 2,
            survivors: 3,
            wall_ns: 40,
        }];
        let parsed = parse_scaling_baseline(&render_json(&[], &rows, &chaos, &[], &[], 1));
        assert_eq!(
            parsed,
            vec![
                ScalingBaselineRow {
                    workload: "heavy_hitters".into(),
                    shards: 1,
                    effective: 1,
                    // The 1-shard anchor is its own base, so the emitter
                    // records 1.00 rather than null.
                    speedup: Some(1.0),
                },
                ScalingBaselineRow {
                    workload: "heavy_hitters".into(),
                    shards: 4,
                    effective: 4,
                    speedup: Some(4.0),
                },
            ]
        );
    }

    #[test]
    fn scaling_gate_trips_on_fallback_and_slowdown() {
        let baseline = vec![
            ScalingBaselineRow {
                workload: "heavy_hitters".into(),
                shards: 1,
                effective: 1,
                speedup: None,
            },
            ScalingBaselineRow {
                workload: "heavy_hitters".into(),
                shards: 4,
                effective: 4,
                speedup: Some(4.0),
            },
        ];
        let fresh_ok = vec![
            scaling_row("heavy_hitters", 1, 1, 400, banzai::ShardTier::Replicable),
            scaling_row("heavy_hitters", 4, 4, 130, banzai::ShardTier::Replicable),
        ];
        assert!(check_scaling_regressions(&fresh_ok, &baseline, 0.5).is_empty());

        // Regressing to a 1-shard fallback is an exact structural trip,
        // even when the fallback run is fast.
        let mut fallback_row = scaling_row("heavy_hitters", 4, 1, 10, banzai::ShardTier::Fallback);
        fallback_row.fallback = Some("not Replicable: scalar state".into());
        let fresh_fallback = vec![
            scaling_row("heavy_hitters", 1, 1, 400, banzai::ShardTier::Fallback),
            fallback_row,
        ];
        let failures = check_scaling_regressions(&fresh_fallback, &baseline, 0.5);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(
            failures[0].contains("coarser partition tier"),
            "{failures:?}"
        );
        assert!(failures[0].contains("not Replicable"), "{failures:?}");

        // A >tolerance modeled slowdown trips too.
        let fresh_slow = vec![
            scaling_row("heavy_hitters", 1, 1, 400, banzai::ShardTier::Replicable),
            scaling_row("heavy_hitters", 4, 4, 300, banzai::ShardTier::Replicable),
        ];
        let failures = check_scaling_regressions(&fresh_slow, &baseline, 0.5);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("regressed"), "{failures:?}");

        // A committed row missing from the fresh sweep trips.
        let failures = check_scaling_regressions(&fresh_ok[..1], &baseline, 0.5);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("missing"), "{failures:?}");
    }

    #[test]
    fn sched_workloads_verify_and_measure() {
        // Small but real: each discipline runs both engines, the 4-way
        // sharded re-run, and its scheduling invariant.
        for discipline in SCHED_DISCIPLINES {
            let m = sched_workload(discipline, 800, 0xE13);
            assert_eq!(m.sched, discipline);
            assert!(m.packets >= 800, "{discipline}");
            assert_eq!(m.transmitted, m.packets as u64, "{discipline}: lossless");
            assert!(m.map_ns > 0 && m.slot_ns > 0, "{discipline}");
        }
    }

    #[test]
    fn sched_baseline_roundtrips_through_the_json_emitter() {
        let sched = vec![
            SchedMeasurement {
                sched: "wfq".into(),
                packets: 10,
                transmitted: 10,
                map_ns: 100,
                slot_ns: 10,
            },
            SchedMeasurement {
                sched: "shaping".into(),
                packets: 10,
                transmitted: 10,
                map_ns: 30,
                slot_ns: 20,
            },
        ];
        // E9 rows ride in the same document, keyed `name` — the sched
        // scanner must skip them (and vice versa, tested above).
        let ms = vec![Measurement {
            name: "flowlet".into(),
            packets: 10,
            map_ns: 50,
            slot_ns: 10,
        }];
        let doc = render_json(&ms, &[], &[], &sched, &[], 1);
        let parsed = parse_sched_baseline(&doc);
        assert_eq!(
            parsed,
            vec![
                SchedBaselineRow {
                    sched: "wfq".into(),
                    speedup: 10.0
                },
                SchedBaselineRow {
                    sched: "shaping".into(),
                    speedup: 1.5
                },
            ]
        );
        // The E9 scanner still sees exactly its own row.
        assert_eq!(parse_baseline(&doc).len(), 1);
    }

    #[test]
    fn sched_gate_trips_only_below_tolerance() {
        let baseline = vec![SchedBaselineRow {
            sched: "wfq".into(),
            speedup: 8.0,
        }];
        let fresh_ok = SchedMeasurement {
            sched: "wfq".into(),
            packets: 10,
            transmitted: 10,
            map_ns: 50,
            slot_ns: 10, // 5x ≥ 0.5 × 8x
        };
        assert!(check_sched_regressions(&[fresh_ok], &baseline, 0.5).is_empty());
        let fresh_bad = SchedMeasurement {
            sched: "wfq".into(),
            packets: 10,
            transmitted: 10,
            map_ns: 30,
            slot_ns: 10, // 3x < 0.5 × 8x
        };
        let failures = check_sched_regressions(&[fresh_bad], &baseline, 0.5);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("regressed"), "{}", failures[0]);
        // A committed discipline missing from the fresh run trips.
        let failures = check_sched_regressions(&[], &baseline, 0.5);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing"), "{}", failures[0]);
    }
}
