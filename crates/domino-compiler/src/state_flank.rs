//! Pass 2 — rewriting state variable operations (Figure 6, §4.1).
//!
//! For each state variable, create a **read flank** that reads the variable
//! into a packet temporary at its first access, replace every occurrence of
//! the variable with that temporary, and append a **write flank** that
//! stores the temporary back at the end of the transaction. For arrays the
//! index expression is materialized once (as a packet field) and shared by
//! both flanks, mirroring the hardware constraint that a memory gets one
//! address per clock cycle.
//!
//! After this pass the only operations on state are whole reads and whole
//! writes; all arithmetic happens on packet fields, which is what makes
//! pipelining (§4.2) tractable.

use crate::branch_removal::Assign;
use crate::fresh::FreshNames;
use domino_ast::ast::{Expr, LValue};
use domino_ast::{CheckedProgram, Span};
use std::collections::{BTreeMap, BTreeSet};

/// Metadata about one flanked state variable.
#[derive(Debug, Clone, PartialEq)]
pub struct FlankInfo {
    /// State variable name.
    pub var: String,
    /// The packet temporary holding its value inside the transaction.
    pub temp_field: String,
    /// For arrays: the packet field used as the (single) index.
    pub index_field: Option<String>,
}

/// Errors from the flanking pass (index-constancy violations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlankError {
    /// Human-readable reason.
    pub message: String,
}

impl std::fmt::Display for FlankError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for FlankError {}

/// Runs the pass. `stmts` must be straight-line (post branch removal).
pub fn rewrite_state_ops(
    stmts: &[Assign],
    program: &CheckedProgram,
    fresh: &mut FreshNames,
) -> Result<(Vec<Assign>, Vec<FlankInfo>), FlankError> {
    let param = program.param.clone();

    // 1. Find each state variable's first access and canonical index expr.
    let mut first_access: BTreeMap<String, usize> = BTreeMap::new();
    let mut index_expr: BTreeMap<String, Expr> = BTreeMap::new();
    for (i, a) in stmts.iter().enumerate() {
        for (var, idx) in state_accesses(a) {
            first_access.entry(var.clone()).or_insert(i);
            if let Some(idx) = idx {
                index_expr.entry(var).or_insert(idx);
            }
        }
    }

    // 2. Index constancy: no field feeding an array's index expression may
    //    be assigned at or after the array's first access (the index must
    //    be constant for the whole transaction execution, Table 1).
    for (var, idx) in &index_expr {
        let first = first_access[var];
        let mut idx_fields: BTreeSet<&str> = BTreeSet::new();
        idx.walk(&mut |e| {
            if let Expr::Field(_, f, _) = e {
                idx_fields.insert(f);
            }
        });
        for (i, a) in stmts.iter().enumerate().skip(first) {
            if let LValue::Field(_, f, _) = &a.lhs {
                if idx_fields.contains(f.as_str()) {
                    return Err(FlankError {
                        message: format!(
                            "field `{f}` feeds the index of array `{var}` but is \
                             reassigned (statement {}) after the array's first \
                             access (statement {}); the index must be constant \
                             for each transaction execution (Table 1)",
                            i + 1,
                            first + 1
                        ),
                    });
                }
            }
        }
    }

    // 3. Allocate flank temporaries (preferring the variable's own name,
    //    like the paper's `pkt.last_time` for state `last_time`).
    let mut flanks: Vec<FlankInfo> = Vec::new();
    let mut by_var: BTreeMap<String, usize> = BTreeMap::new();
    let mut vars_by_pos: Vec<(usize, String)> =
        first_access.iter().map(|(v, i)| (*i, v.clone())).collect();
    vars_by_pos.sort();
    for (_, var) in &vars_by_pos {
        let temp_field = fresh.fresh(var);
        let index_field = match index_expr.get(var) {
            None => None,
            Some(Expr::Field(_, f, _)) => Some(f.clone()),
            Some(_) => Some(fresh.fresh(&format!("__idx_{var}"))),
        };
        by_var.insert(var.clone(), flanks.len());
        flanks.push(FlankInfo {
            var: var.clone(),
            temp_field,
            index_field,
        });
    }

    // 4. Emit: index materialization + read flank before first access,
    //    rewritten statements, write flanks at the end.
    let mut out: Vec<Assign> = Vec::new();
    for (i, a) in stmts.iter().enumerate() {
        for (pos, var) in &vars_by_pos {
            if *pos == i {
                let fi = &flanks[by_var[var]];
                emit_read_flank(fi, index_expr.get(var), &param, &mut out);
            }
        }
        out.push(rewrite_assign(a, &flanks, &by_var, &param));
    }
    // Variables whose first access would be past the end (cannot happen,
    // but keep the loop total for empty bodies).
    for (pos, var) in &vars_by_pos {
        if *pos >= stmts.len() {
            let fi = &flanks[by_var[var]];
            emit_read_flank(fi, index_expr.get(var), &param, &mut out);
        }
    }
    for fi in &flanks {
        let temp = Expr::Field(param.clone(), fi.temp_field.clone(), Span::SYNTH);
        let lhs = match &fi.index_field {
            None => LValue::Scalar(fi.var.clone(), Span::SYNTH),
            Some(idx) => LValue::Array(
                fi.var.clone(),
                Box::new(Expr::Field(param.clone(), idx.clone(), Span::SYNTH)),
                Span::SYNTH,
            ),
        };
        out.push(Assign { lhs, rhs: temp });
    }

    Ok((out, flanks))
}

fn emit_read_flank(fi: &FlankInfo, idx_expr: Option<&Expr>, param: &str, out: &mut Vec<Assign>) {
    // Materialize a complex index expression once.
    if let (Some(idx_field), Some(expr)) = (&fi.index_field, idx_expr) {
        let already_a_field = matches!(expr, Expr::Field(_, f, _) if f == idx_field);
        if !already_a_field {
            out.push(Assign {
                lhs: LValue::Field(param.to_string(), idx_field.clone(), Span::SYNTH),
                rhs: expr.clone(),
            });
        }
    }
    let rhs = match &fi.index_field {
        None => Expr::Ident(fi.var.clone(), Span::SYNTH),
        Some(idx) => Expr::Index(
            fi.var.clone(),
            Box::new(Expr::Field(param.to_string(), idx.clone(), Span::SYNTH)),
            Span::SYNTH,
        ),
    };
    out.push(Assign {
        lhs: LValue::Field(param.to_string(), fi.temp_field.clone(), Span::SYNTH),
        rhs,
    });
}

/// Replaces state reads/writes in one statement with the flank temporaries.
fn rewrite_assign(
    a: &Assign,
    flanks: &[FlankInfo],
    by_var: &BTreeMap<String, usize>,
    param: &str,
) -> Assign {
    let temp_of = |var: &str| flanks[by_var[var]].temp_field.clone();
    let rhs = a.rhs.clone().map(&mut |e| match e {
        Expr::Ident(name, s) if by_var.contains_key(&name) => {
            Expr::Field(param.to_string(), temp_of(&name), s)
        }
        Expr::Index(name, _, s) if by_var.contains_key(&name) => {
            Expr::Field(param.to_string(), temp_of(&name), s)
        }
        other => other,
    });
    let lhs = match &a.lhs {
        LValue::Scalar(name, s) if by_var.contains_key(name) => {
            LValue::Field(param.to_string(), temp_of(name), *s)
        }
        LValue::Array(name, _, s) if by_var.contains_key(name) => {
            LValue::Field(param.to_string(), temp_of(name), *s)
        }
        other => other.clone(),
    };
    Assign { lhs, rhs }
}

/// Yields `(var, index_expr?)` for each state access in a statement.
fn state_accesses(a: &Assign) -> Vec<(String, Option<Expr>)> {
    let mut out = Vec::new();
    a.rhs.walk(&mut |e| match e {
        Expr::Ident(name, _) => out.push((name.clone(), None)),
        Expr::Index(name, idx, _) => out.push((name.clone(), Some((**idx).clone()))),
        _ => {}
    });
    match &a.lhs {
        LValue::Scalar(name, _) => out.push((name.clone(), None)),
        LValue::Array(name, idx, _) => out.push((name.clone(), Some((**idx).clone()))),
        LValue::Field(..) => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_removal::remove_branches;
    use domino_ast::parse_and_check;

    fn run(src: &str) -> (Vec<String>, Vec<FlankInfo>) {
        let p = parse_and_check(src).unwrap();
        let mut fresh = FreshNames::new(p.packet_fields.iter().cloned());
        let straight = remove_branches(&p.body, &mut fresh);
        let (flanked, infos) = rewrite_state_ops(&straight, &p, &mut fresh).unwrap();
        let lines = flanked
            .iter()
            .map(|a| {
                format!(
                    "{} = {};",
                    domino_ast::pretty::lvalue_to_string(&a.lhs),
                    a.rhs
                )
            })
            .collect();
        (lines, infos)
    }

    #[test]
    fn scalar_gets_read_and_write_flanks() {
        let (lines, infos) = run("struct P { int x; };\nint c = 0;\n\
             void f(struct P pkt) { c = c + pkt.x; }");
        assert_eq!(
            lines,
            vec![
                "pkt.c = c;",               // read flank
                "pkt.c = (pkt.c + pkt.x);", // rewritten
                "c = pkt.c;",               // write flank
            ]
        );
        assert_eq!(infos[0].temp_field, "c");
        assert_eq!(infos[0].index_field, None);
    }

    #[test]
    fn array_flanks_match_figure6() {
        let (lines, _) = run(
            "struct P { int id; int arrival; };\nint last_time[8] = {0};\n\
             void f(struct P pkt) {\n\
               pkt.id = 3;\n\
               last_time[pkt.id] = pkt.arrival;\n\
             }",
        );
        assert_eq!(
            lines,
            vec![
                "pkt.id = 3;",
                "pkt.last_time = last_time[pkt.id];", // read flank
                "pkt.last_time = pkt.arrival;",       // rewritten
                "last_time[pkt.id] = pkt.last_time;", // write flank
            ]
        );
    }

    #[test]
    fn reads_replaced_with_temp() {
        let (lines, _) = run("struct P { int id; int out; };\nint tbl[4] = {0};\n\
             void f(struct P pkt) { pkt.out = tbl[pkt.id] + 1; }");
        assert_eq!(
            lines,
            vec![
                "pkt.tbl = tbl[pkt.id];",
                "pkt.out = (pkt.tbl + 1);",
                "tbl[pkt.id] = pkt.tbl;",
            ]
        );
    }

    #[test]
    fn complex_index_is_materialized_once() {
        let (lines, infos) = run("struct P { int a; int out; };\nint tbl[16] = {0};\n\
             void f(struct P pkt) { pkt.out = tbl[pkt.a & 15]; }");
        assert_eq!(infos[0].index_field.as_deref(), Some("__idx_tbl"));
        assert_eq!(lines[0], "pkt.__idx_tbl = (pkt.a & 15);");
        assert_eq!(lines[1], "pkt.tbl = tbl[pkt.__idx_tbl];");
        assert_eq!(lines[3], "tbl[pkt.__idx_tbl] = pkt.tbl;");
    }

    #[test]
    fn flank_temp_avoids_colliding_field_name() {
        // The packet already has a field named like the state variable.
        let (lines, infos) = run("struct P { int c; };\nint c = 0;\n\
             void f(struct P pkt) { c = c + pkt.c; }");
        assert_eq!(infos[0].temp_field, "c_1");
        assert_eq!(lines[0], "pkt.c_1 = c;");
        assert_eq!(lines[2], "c = pkt.c_1;");
    }

    #[test]
    fn index_reassignment_after_first_access_rejected() {
        let p = parse_and_check(
            "struct P { int id; };\nint tbl[4] = {0};\n\
             void f(struct P pkt) { tbl[pkt.id] = 1; pkt.id = 2; }",
        )
        .unwrap();
        let mut fresh = FreshNames::new(p.packet_fields.iter().cloned());
        let straight = remove_branches(&p.body, &mut fresh);
        let err = rewrite_state_ops(&straight, &p, &mut fresh).unwrap_err();
        assert!(err.message.contains("must be constant"), "{}", err.message);
    }

    #[test]
    fn index_assignment_before_first_access_is_fine() {
        let (lines, _) = run("struct P { int id; };\nint tbl[4] = {0};\n\
             void f(struct P pkt) { pkt.id = 2; tbl[pkt.id] = 1; }");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn two_variables_flanked_independently() {
        let (lines, infos) = run(
            "struct P { int id; int v; };\nint a[4] = {0};\nint b = 0;\n\
             void f(struct P pkt) { a[pkt.id] = pkt.v; b = b + 1; }",
        );
        assert_eq!(infos.len(), 2);
        // Both write flanks are at the end.
        assert!(lines[lines.len() - 2].starts_with("a[pkt.id]"), "{lines:?}");
        assert!(lines[lines.len() - 1].starts_with("b ="), "{lines:?}");
    }

    #[test]
    fn flowlet_guarded_write_rewrites_to_temp() {
        let (lines, _) = run("#define THRESHOLD 5\n\
             struct P { int arrival; int new_hop; int id; int next_hop; };\n\
             int last_time[8] = {0};\nint saved_hop[8] = {0};\n\
             void f(struct P pkt) {\n\
               if (pkt.arrival - last_time[pkt.id] > THRESHOLD) {\n\
                 saved_hop[pkt.id] = pkt.new_hop;\n\
               }\n\
               last_time[pkt.id] = pkt.arrival;\n\
               pkt.next_hop = saved_hop[pkt.id];\n\
             }");
        let text = lines.join("\n");
        // The guarded write becomes a conditional on the temp.
        assert!(
            text.contains("pkt.saved_hop = (pkt.__br ? pkt.new_hop : pkt.saved_hop);"),
            "{text}"
        );
        // Write flanks for both arrays appear at the end.
        assert!(
            text.ends_with(
                "last_time[pkt.id] = pkt.last_time;\nsaved_hop[pkt.id] = pkt.saved_hop;"
            ) || text.ends_with(
                "saved_hop[pkt.id] = pkt.saved_hop;\nlast_time[pkt.id] = pkt.last_time;"
            ),
            "{text}"
        );
    }
}
