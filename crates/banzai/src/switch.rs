//! The whole-switch view of Figure 1: packets traverse an **ingress
//! pipeline**, are queued, and then traverse an **egress pipeline** before
//! transmission.
//!
//! Table 4 assigns each algorithm to one of the two pipelines (flowlet
//! routing decisions happen at ingress; RCP/HULL/CoDel queue measurements
//! at egress, where sojourn times are known). Both pipelines are ordinary
//! Banzai machines; the queue between them is modeled as a bounded FIFO
//! whose occupancy and sojourn timestamps are exposed to egress programs
//! as packet metadata — exactly the metadata real switch schedulers
//! provide.
//!
//! The switch is generic over its [`PipelineEngine`]: the map-based
//! reference [`Machine`] (the default) or the slot-compiled
//! [`SlotMachine`] fast path — the two are observably identical, which the
//! differential throughput harness asserts.

use crate::machine::{AtomPipeline, Machine};
use crate::slot::SlotMachine;
use domino_ir::{Packet, StateStore};
use std::collections::VecDeque;

/// An execution engine a [`Switch`] can drive a pipeline with.
///
/// Implemented by the map-based reference [`Machine`] and by the
/// slot-compiled [`SlotMachine`]; both process one packet per clock and
/// expose their persistent state for inspection.
pub trait PipelineEngine {
    /// Runs one packet through every stage (transactional view).
    fn process(&mut self, pkt: Packet) -> Packet;

    /// Snapshot of the engine's persistent state, in map form.
    fn export_state(&self) -> StateStore;
}

impl PipelineEngine for Machine {
    fn process(&mut self, pkt: Packet) -> Packet {
        Machine::process(self, pkt)
    }

    fn export_state(&self) -> StateStore {
        self.state().clone()
    }
}

impl PipelineEngine for SlotMachine {
    fn process(&mut self, pkt: Packet) -> Packet {
        SlotMachine::process(self, pkt)
    }

    fn export_state(&self) -> StateStore {
        SlotMachine::export_state(self)
    }
}

/// A switch: ingress pipeline, a bounded FIFO queue, egress pipeline.
#[derive(Debug, Clone)]
pub struct Switch<E: PipelineEngine = Machine> {
    ingress: E,
    egress: E,
    queue: VecDeque<(i64, Packet)>,
    capacity: usize,
    /// Cycles taken to transmit one packet from the queue (≥1): values
    /// above 1 create standing queues under load, which is what egress
    /// AQM algorithms exist to observe.
    drain_period: u64,
    now: i64,
    drops: u64,
    transmitted: u64,
    /// Metadata field names written for egress programs.
    enqueue_ts_field: String,
    depth_field: String,
}

impl Switch<Machine> {
    /// Builds a switch from two compiled pipelines and a queue capacity,
    /// running both on the map-based reference engine.
    pub fn new(ingress: AtomPipeline, egress: AtomPipeline, capacity: usize) -> Switch {
        Switch::from_engines(Machine::new(ingress), Machine::new(egress), capacity)
    }

    /// The ingress machine's state (for inspection).
    pub fn ingress_state(&self) -> &domino_ir::StateStore {
        self.ingress.state()
    }

    /// The egress machine's state (for inspection).
    pub fn egress_state(&self) -> &domino_ir::StateStore {
        self.egress.state()
    }
}

impl Switch<SlotMachine> {
    /// Builds a switch running both pipelines on the slot-compiled fast
    /// path (bit-identical to [`Switch::new`], without per-packet string
    /// hashing inside the pipelines).
    pub fn new_slot(
        ingress: &AtomPipeline,
        egress: &AtomPipeline,
        capacity: usize,
    ) -> Result<Switch<SlotMachine>, String> {
        Ok(Switch::from_engines(
            SlotMachine::compile(ingress)?,
            SlotMachine::compile(egress)?,
            capacity,
        ))
    }
}

impl<E: PipelineEngine> Switch<E> {
    /// Builds a switch from two already-instantiated engines.
    pub fn from_engines(ingress: E, egress: E, capacity: usize) -> Switch<E> {
        Switch {
            ingress,
            egress,
            queue: VecDeque::new(),
            capacity,
            drain_period: 1,
            now: 0,
            drops: 0,
            transmitted: 0,
            enqueue_ts_field: "enq_ts".to_string(),
            depth_field: "qdepth".to_string(),
        }
    }

    /// Sets how many cycles the output link needs per packet (default 1;
    /// larger values model an oversubscribed egress link).
    pub fn with_drain_period(mut self, cycles: u64) -> Switch<E> {
        self.drain_period = cycles.max(1);
        self
    }

    /// Renames the metadata fields exposed to egress programs.
    pub fn with_metadata_fields(mut self, enqueue_ts: &str, depth: &str) -> Switch<E> {
        self.enqueue_ts_field = enqueue_ts.to_string();
        self.depth_field = depth.to_string();
        self
    }

    /// Number of packets dropped at the (full) queue so far.
    ///
    /// ```
    /// use banzai::{AtomPipeline, Switch};
    /// use domino_ir::Packet;
    ///
    /// // Capacity 2 with a link needing 4 cycles/packet: arrivals outrun
    /// // the drain and the tail drops.
    /// let mut sw = Switch::new(
    ///     AtomPipeline::passthrough("in"),
    ///     AtomPipeline::passthrough("out"),
    ///     2,
    /// )
    /// .with_drain_period(4);
    /// let out = sw.run_trace(&vec![Packet::new(); 10]);
    /// assert!(sw.drops() > 0);
    /// // Conservation: every admitted packet is eventually transmitted.
    /// assert_eq!(out.len() as u64, sw.transmitted());
    /// assert_eq!(sw.transmitted() + sw.drops(), 10);
    /// ```
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Number of packets transmitted (fully processed by egress) so far.
    ///
    /// ```
    /// use banzai::{AtomPipeline, Switch};
    /// use domino_ir::Packet;
    ///
    /// let mut sw = Switch::new(
    ///     AtomPipeline::passthrough("in"),
    ///     AtomPipeline::passthrough("out"),
    ///     64,
    /// );
    /// sw.run_trace(&vec![Packet::new(); 5]);
    /// assert_eq!(sw.transmitted(), 5);
    /// assert_eq!(sw.drops(), 0);
    /// ```
    pub fn transmitted(&self) -> u64 {
        self.transmitted
    }

    /// Current queue occupancy.
    ///
    /// ```
    /// use banzai::{AtomPipeline, Switch};
    /// use domino_ir::Packet;
    ///
    /// let mut sw = Switch::new(
    ///     AtomPipeline::passthrough("in"),
    ///     AtomPipeline::passthrough("out"),
    ///     64,
    /// );
    /// assert_eq!(sw.queue_depth(), 0); // empty between full traces
    /// sw.run_trace(&vec![Packet::new(); 8]);
    /// assert_eq!(sw.queue_depth(), 0); // run_trace drains the queue
    /// assert_eq!(sw.capacity(), 64);
    /// ```
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The queue's capacity (packets beyond this are dropped at enqueue).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the ingress engine's persistent state.
    pub fn export_ingress_state(&self) -> StateStore {
        self.ingress.export_state()
    }

    /// Snapshot of the egress engine's persistent state.
    pub fn export_egress_state(&self) -> StateStore {
        self.egress.export_state()
    }

    /// Runs a trace through the whole switch: each input packet is
    /// processed by ingress and enqueued (or dropped if the queue is
    /// full); the queue drains one packet every `drain_period` cycles
    /// through egress. Returns transmitted packets in order.
    ///
    /// One input packet arrives per cycle (the line-rate assumption);
    /// `enq_ts`/`qdepth` metadata (or the configured names) are stamped at
    /// enqueue, and `now` is refreshed at dequeue so egress programs can
    /// compute sojourn times.
    pub fn run_trace(&mut self, trace: &[Packet]) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut inputs = trace.iter();
        loop {
            // Dequeue + egress on drain cycles.
            if self.now as u64 % self.drain_period == 0 {
                if let Some((enq_ts, mut pkt)) = self.queue.pop_front() {
                    pkt.set(&self.enqueue_ts_field, enq_ts as i32);
                    pkt.set("now", self.now as i32);
                    pkt.set(&self.depth_field, self.queue.len() as i32);
                    out.push(self.egress.process(pkt));
                    self.transmitted += 1;
                }
            }
            // Admit one packet per cycle.
            match inputs.next() {
                Some(p) => {
                    let processed = self.ingress.process(p.clone());
                    if self.queue.len() >= self.capacity {
                        self.drops += 1;
                    } else {
                        self.queue.push_back((self.now, processed));
                    }
                }
                None => {
                    if self.queue.is_empty() {
                        break;
                    }
                }
            }
            self.now += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The compiler lives upstream of this crate, so unit tests here cover
    // queue mechanics with pass-through pipelines; real-algorithm switch
    // tests live in the workspace integration suite.
    fn passthrough(name: &str) -> AtomPipeline {
        AtomPipeline::passthrough(name)
    }

    #[test]
    fn queue_preserves_order_and_count() {
        let mut sw = Switch::new(passthrough("in"), passthrough("out"), 64);
        let trace: Vec<Packet> = (0..40).map(|i| Packet::new().with("seq", i)).collect();
        let out = sw.run_trace(&trace);
        assert_eq!(out.len(), 40);
        for (i, p) in out.iter().enumerate() {
            assert_eq!(p.get("seq"), Some(i as i32));
        }
        assert_eq!(sw.drops(), 0);
        assert_eq!(sw.transmitted(), 40);
    }

    #[test]
    fn oversubscribed_link_builds_queue_and_drops() {
        // Drain every 2 cycles with capacity 8: arrivals outpace the link.
        let mut sw = Switch::new(passthrough("in"), passthrough("out"), 8).with_drain_period(2);
        let trace: Vec<Packet> = (0..100).map(|i| Packet::new().with("seq", i)).collect();
        let out = sw.run_trace(&trace);
        assert!(sw.drops() > 0, "expected drops, got none");
        assert_eq!(out.len() as u64 + sw.drops(), 100);
        assert_eq!(sw.transmitted(), out.len() as u64);
    }

    #[test]
    fn egress_sees_sojourn_metadata() {
        let mut sw = Switch::new(passthrough("in"), passthrough("out"), 64).with_drain_period(3);
        let trace: Vec<Packet> = (0..30).map(|i| Packet::new().with("seq", i)).collect();
        let out = sw.run_trace(&trace);
        // Sojourn = now - enq_ts grows as the queue builds.
        let sojourns: Vec<i32> = out
            .iter()
            .map(|p| p.get("now").unwrap() - p.get("enq_ts").unwrap())
            .collect();
        assert!(*sojourns.last().unwrap() > sojourns[0], "{sojourns:?}");
        assert!(out.iter().all(|p| p.get("qdepth").is_some()));
    }

    #[test]
    fn slot_engine_switch_matches_reference_switch() {
        let mk_map = || Switch::new(passthrough("in"), passthrough("out"), 8).with_drain_period(2);
        let mk_slot = || {
            Switch::new_slot(&passthrough("in"), &passthrough("out"), 8)
                .unwrap()
                .with_drain_period(2)
        };
        let trace: Vec<Packet> = (0..100).map(|i| Packet::new().with("seq", i)).collect();
        let (mut a, mut b) = (mk_map(), mk_slot());
        assert_eq!(a.run_trace(&trace), b.run_trace(&trace));
        assert_eq!(a.drops(), b.drops());
        assert_eq!(a.transmitted(), b.transmitted());
    }
}
