//! `domc` — the Domino compiler command-line driver.
//!
//! ```text
//! domc <file.domino> [--target <atom>] [--lut] [--emit <what>]
//!
//!   --target <atom>   stateful atom of the Banzai target: write, raw,
//!                     praw, ifelse_raw, sub, nested, pairs (default: pairs)
//!   --lut             extend the target with the look-up-table unit (X1)
//!   --emit <what>     pipeline (default) | layout | flow-key | p4 |
//!                     tac | pvsm | dot | normalized | json
//!   --all-targets     try every standard target and report the least
//!                     expressive atom that runs the program (Table 4 view)
//! ```

use banzai::{AtomKind, Target};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut file: Option<&str> = None;
    let mut kind = AtomKind::Pairs;
    let mut lut = false;
    let mut emit = "pipeline";
    let mut all_targets = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--target" => {
                i += 1;
                let name = args.get(i).ok_or("--target needs a value")?;
                kind = AtomKind::from_short_name(name).ok_or_else(|| {
                    format!(
                        "unknown atom `{name}` (expected one of: {})",
                        AtomKind::ALL.map(|k| k.short_name()).join(", ")
                    )
                })?;
            }
            "--lut" => lut = true,
            "--emit" => {
                i += 1;
                emit = args.get(i).ok_or("--emit needs a value")?;
            }
            "--all-targets" => all_targets = true,
            "--help" | "-h" => {
                println!("{}", HELP);
                return Ok(());
            }
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
        i += 1;
    }

    let file = file.ok_or("usage: domc <file.domino> [options] (try --help)")?;
    let source = std::fs::read_to_string(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;

    let compilation = domino_compiler::normalize(&source).map_err(|e| e.to_string())?;

    if all_targets {
        for k in AtomKind::ALL {
            let target = make_target(k, lut);
            match domino_compiler::lower(&compilation, &target) {
                Ok(p) => {
                    println!(
                        "{:<12} OK   ({} stages, max {} atoms/stage)",
                        k.short_name(),
                        p.depth(),
                        p.max_atoms_per_stage()
                    );
                }
                Err(e) => {
                    let first = e.message.lines().next().unwrap_or("");
                    println!("{:<12} FAIL {first}", k.short_name());
                }
            }
        }
        return Ok(());
    }

    let target = make_target(kind, lut);
    match emit {
        "normalized" => {
            print!(
                "{}",
                domino_compiler::Compilation::render_assigns(&compilation.ssa)
            );
        }
        "flow-key" => match domino_compiler::flow_key(&compilation) {
            Ok(part) => print!("{part}"),
            Err(why) => {
                println!("not shard-partitionable: {why}");
                println!("(a sharded switch will fall back to a single shard)");
            }
        },
        "tac" => print!("{}", compilation.tac),
        "pvsm" => print!("{}", compilation.pvsm),
        "dot" => {
            let graph = domino_compiler::depgraph::DepGraph::build(&compilation.tac.stmts);
            print!("{}", graph.to_dot(&compilation.tac.stmts));
        }
        "pipeline" => {
            let pipeline =
                domino_compiler::lower(&compilation, &target).map_err(|e| e.to_string())?;
            print!("{pipeline}");
        }
        "layout" => {
            let pipeline =
                domino_compiler::lower(&compilation, &target).map_err(|e| e.to_string())?;
            // `lower` validates slot-executability, so this cannot fail.
            let program = banzai::SlotPipeline::lower(&pipeline).map_err(|e| e.to_string())?;
            print!("{program}");
        }
        "p4" => {
            let pipeline =
                domino_compiler::lower(&compilation, &target).map_err(|e| e.to_string())?;
            print!("{}", p4_backend::generate(&compilation, &pipeline));
        }
        "json" => {
            let pipeline =
                domino_compiler::lower(&compilation, &target).map_err(|e| e.to_string())?;
            // Hand-rolled emission: the build environment is offline, so no
            // serde dependency — the document is small and fully escapable.
            let stages: Vec<String> = pipeline
                .stages
                .iter()
                .map(|stage| {
                    let atoms: Vec<String> = stage
                        .iter()
                        .map(|atom| {
                            let stmts: Vec<String> = atom
                                .codelet
                                .stmts
                                .iter()
                                .map(|s| json_string(&s.to_string()))
                                .collect();
                            format!(
                                "{{\"stateful\": {}, \"statements\": [{}]}}",
                                atom.is_stateful(),
                                stmts.join(", ")
                            )
                        })
                        .collect();
                    format!("[{}]", atoms.join(", "))
                })
                .collect();
            let kind = pipeline
                .max_stateful_kind()
                .map(|k| json_string(k.short_name()))
                .unwrap_or_else(|| "null".into());
            println!(
                "{{\n  \"name\": {},\n  \"target\": {},\n  \"depth\": {},\n  \
                 \"max_atoms_per_stage\": {},\n  \"max_stateful_kind\": {},\n  \
                 \"stages\": [\n    {}\n  ]\n}}",
                json_string(&pipeline.name),
                json_string(&pipeline.target_name),
                pipeline.depth(),
                pipeline.max_atoms_per_stage(),
                kind,
                stages.join(",\n    ")
            );
        }
        other => {
            return Err(format!(
                "unknown --emit `{other}` (pipeline, layout, flow-key, p4, tac, pvsm, dot, normalized, json)"
            ))
        }
    }
    Ok(())
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn make_target(kind: AtomKind, lut: bool) -> Target {
    if lut {
        Target::banzai_with_lut(kind)
    } else {
        Target::banzai(kind)
    }
}

const HELP: &str = "\
domc — compile Domino packet transactions to Banzai atom pipelines

USAGE:
    domc <file.domino> [--target <atom>] [--lut] [--emit <what>]
    domc <file.domino> --all-targets

OPTIONS:
    --target <atom>  write | raw | praw | ifelse_raw | sub | nested | pairs
                     (default: pairs)
    --lut            add the look-up-table unit (isqrt/codel_gap)
    --emit <what>    pipeline | layout | flow-key | p4 | tac | pvsm | dot | normalized | json
    --all-targets    report which standard targets can run the program";
