//! # domino-ir — shared intermediate representation and reference semantics
//!
//! This crate sits between the Domino front end ([`domino_ast`]) and the
//! Banzai machine model: it defines
//!
//! * [`packet::Packet`] — parsed packets as named 32-bit fields,
//! * [`state::StateStore`] — persistent switch state (registers/arrays),
//! * [`layout`] — the compile-time field-layout pass: interned fields
//!   ([`layout::FieldTable`]), flat packets ([`layout::FlatPacket`]), and
//!   flat state ([`layout::FlatState`]) for the slot-compiled fast path,
//! * [`tac`] — three-address code, the normalized form of a transaction,
//! * [`codelet`] — codelets and the PVSM pipeline IR (§4.2),
//! * [`interp`] — the sequential reference interpreters that define the
//!   packet-transaction semantics every backend must preserve,
//! * [`wire`] — the canonical field names byte-level wire headers parse
//!   into (the naming contract between `banzai::wire`'s parser/deparser
//!   and compiled pipelines).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codelet;
pub mod interp;
pub mod layout;
pub mod packet;
pub mod state;
pub mod tac;
pub mod wire;

pub use codelet::{Codelet, PvsmPipeline};
pub use interp::{run_ast, run_tac, step_ast, step_tac};
pub use layout::{
    FieldId, FieldTable, FlatPacket, FlatState, FlowKeySpec, MergeOp, Partitionability,
    ReplicaArray, ReplicaSpec, StateLayout,
};
pub use packet::Packet;
pub use state::{StateStore, StateValue};
pub use tac::{Operand, StateRef, TacProgram, TacRhs, TacStmt};
