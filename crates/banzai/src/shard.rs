//! The sharded switch: N independent slot-compiled switches behind an
//! RSS-style flow-steering dispatcher.
//!
//! The paper's Banzai machine reaches line rate by pipelining atoms in
//! hardware; a software simulator reaches for cores instead. The key
//! observation carries over: Domino confines every piece of per-flow
//! state to one atom, and when that state is *indexed by a packet-derived
//! flow key* (`flowlet.domino`'s `last_time[pkt.id]`), packets of
//! different key classes never touch common state — so the trace can be
//! partitioned across shards with **no cross-shard coordination**, the
//! same per-flow partitioning RSS NICs and multi-pipeline P4 targets rely
//! on.
//!
//! The moving parts:
//!
//! * [`ShardPlan`] — resolves how to steer: the flow key extracted from
//!   the pipelines' state indexing
//!   ([`StateLayout::flow_key`](domino_ir::layout::StateLayout::flow_key)),
//!   **replica mode** for commutative sketch state
//!   (`heavy_hitters.domino`'s three differently-hashed count-min rows:
//!   every shard runs a full copy over packets dealt round-robin —
//!   balanced even under heavy-tailed flow skew — and exported copies
//!   fold back elementwise at collect time), an explicit field list,
//!   whole-packet hashing for
//!   stateless pipelines, or a **single-shard fallback with a two-tier
//!   diagnostic** when the state survives neither analysis (`rcp.domino`'s
//!   global registers) — see [`ShardTier`];
//! * [`ShardedSwitch`] — spawns one worker thread per shard
//!   ([`ShardedSwitch::run_trace`]), feeds each through a bounded ring of
//!   packet batches, runs an independent [`Switch`] per shard (stamped
//!   with global arrival cycles, so queue metadata is bit-identical to
//!   the serial switch), and merges transmitted packets by **seeded
//!   round-robin** — per-flow order is preserved exactly (a flow, as
//!   defined by the steering key, lives on one shard; under stateless
//!   whole-packet steering that means identical packets — steer with
//!   [`SteerMode::Fields`] for a field-subset flow definition), and the
//!   cross-flow interleaving is a deterministic function of the seed, so
//!   differential tests stay bit-reproducible run to run;
//! * merged state export — under keyed steering each array slot belongs
//!   to exactly one key class, hence to exactly one shard; reading every
//!   slot from its owner reconstructs the serial state bit-for-bit.
//!   Under replica mode every shard holds a full sketch copy and
//!   [`ReplicaSpec::merge_states`] folds them — summed displacements for
//!   counter rows, elementwise max for membership bits — which is *also*
//!   bit-identical to the serial state; only per-packet outputs that
//!   read sketch state mid-trace trade bit-identity for the sketch's own
//!   (ε, δ) approximation contract.
//!
//! The sequential twins ([`ShardedSwitch::run_trace_partitioned`],
//! [`ShardedSwitch::run_trace_instrumented`]) run the same plan on the
//! caller's thread, which is what the E10 harness times: per-shard busy
//! time measured without scheduler interference gives the critical-path
//! throughput the shards would sustain on real cores.
//!
//! # Supervision
//!
//! The threaded path ([`ShardedSwitch::run_trace`]) is **supervised**: a
//! worker that panics, stalls past the [`ShardConfig::watchdog_ms`]
//! watchdog, or dies silently never takes the run down with it. Each
//! worker wraps every batch in `catch_unwind`; the feeder detects dead
//! rings and applies the configured [`Backpressure`] policy to full ones
//! (block with a watchdog, or shed under the
//! [`DropReason::Backpressure`]
//! counter); the collector abandons — never joins — a hung worker. A
//! faulted run returns
//! [`SwitchError::Fault`] carrying a
//! full [`FaultReport`]: per-shard errors,
//! salvaged outputs and state snapshots, and exact packet-conservation
//! accounting. Failed shards are rebuilt with fresh engines, so the
//! switch stays usable after a fault.

use crate::error::{
    Accounting, FaultCause, FaultReport, ShardError, ShardSalvage, SourceFault, SwitchError,
};
use crate::machine::AtomPipeline;
use crate::pifo::{SchedKey, SchedQueue, SchedSpec, Scheduler};
use crate::slot::SlotMachine;
use crate::stream::{
    FrameSource, IntoFrameSource, IntoPacketSource, PacketSource, RunStats, SourceError,
};
use crate::switch::{
    DropCounters, DropReason, PipelineEngine, SchedDeparture, Switch, QUEUE_METADATA_FIELDS,
};
use crate::wire::{self, WireConfig};
use domino_ast::{StateKind, StateVar};
use domino_ir::layout::{mix64, FlowKeySpec, Partitionability, ReplicaSpec, StateLayout};
use domino_ir::{Packet, StateStore, TacStmt};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// A batch of packets stamped with their global arrival cycles, in flight
/// to a shard worker.
type StampedBatch = Vec<(i64, Packet)>;

/// The feeder's handle to one shard's batch ring (`None` once the shard
/// has been declared dead or stalled and cut off).
type BatchSender = Option<mpsc::SyncSender<StampedBatch>>;

/// Configuration for a [`ShardedSwitch`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Requested shard (worker) count; the plan may fall back to 1.
    pub shards: usize,
    /// Packets per steering batch (the unit pushed into a shard's ring).
    pub batch: usize,
    /// Ring depth in batches (bounded channel capacity — backpressure).
    pub ring: usize,
    /// Seed for the deterministic round-robin output merge.
    pub seed: u64,
    /// Per-shard queue capacity (see [`Switch::capacity`]).
    pub capacity: usize,
    /// How to steer packets to shards.
    pub steer: SteerMode,
    /// What the dispatcher does when a shard's ring stays full.
    pub backpressure: Backpressure,
    /// Watchdog window in milliseconds: how long the dispatcher blocks on
    /// a full ring under [`Backpressure::Block`], and how long the
    /// collector waits for a worker's outcome, before declaring the
    /// worker stalled and abandoning it.
    pub watchdog_ms: u64,
    /// The scheduling policy every shard's queue runs (default: drop-tail
    /// FIFO — see [`SchedSpec`] and [`ShardedSwitch::run_sched_trace`]).
    pub sched: SchedSpec,
}

impl ShardConfig {
    /// A config with `shards` workers and the defaults: 256-packet
    /// batches, an 8-batch ring, capacity 512, automatic steering,
    /// blocking backpressure with a 5-second watchdog.
    pub fn new(shards: usize) -> ShardConfig {
        ShardConfig {
            shards: shards.max(1),
            batch: 256,
            ring: 8,
            seed: 0x5EED_0001,
            capacity: 512,
            steer: SteerMode::Auto,
            backpressure: Backpressure::Block,
            watchdog_ms: 5_000,
            sched: SchedSpec::Fifo,
        }
    }

    /// Overrides the steering batch size.
    pub fn with_batch(mut self, batch: usize) -> ShardConfig {
        self.batch = batch.max(1);
        self
    }

    /// Overrides the merge seed.
    pub fn with_seed(mut self, seed: u64) -> ShardConfig {
        self.seed = seed;
        self
    }

    /// Overrides the per-shard queue capacity.
    pub fn with_capacity(mut self, capacity: usize) -> ShardConfig {
        self.capacity = capacity;
        self
    }

    /// Overrides the ring depth (batches per shard channel, floored at 1).
    pub fn with_ring(mut self, ring: usize) -> ShardConfig {
        self.ring = ring.max(1);
        self
    }

    /// Overrides the steering mode.
    pub fn with_steer(mut self, steer: SteerMode) -> ShardConfig {
        self.steer = steer;
        self
    }

    /// Overrides the overload policy.
    pub fn with_backpressure(mut self, policy: Backpressure) -> ShardConfig {
        self.backpressure = policy;
        self
    }

    /// Overrides the watchdog window (milliseconds, floored at 1).
    pub fn with_watchdog_ms(mut self, ms: u64) -> ShardConfig {
        self.watchdog_ms = ms.max(1);
        self
    }

    /// Overrides the scheduling policy every shard's queue runs.
    pub fn with_scheduler(mut self, sched: SchedSpec) -> ShardConfig {
        self.sched = sched;
        self
    }
}

/// What the dispatcher does when a shard's batch ring is full — the
/// explicit overload policy (a full ring must degrade deterministically,
/// never block forever).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Wait for the worker to drain the ring (lossless), but only up to
    /// the [`ShardConfig::watchdog_ms`] watchdog — a worker that never
    /// drains is declared stalled and abandoned, not waited on forever.
    #[default]
    Block,
    /// Drop the batch on the floor immediately, counting every packet
    /// under [`DropReason::Backpressure`]
    /// — bounded latency at the cost of loss, the overload behaviour of a
    /// real line-rate dispatcher.
    Shed,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig::new(1)
    }
}

/// How the dispatcher picks a shard for each packet.
#[derive(Debug, Clone, PartialEq)]
pub enum SteerMode {
    /// Derive the flow key from the pipelines' own state indexing (the
    /// default); falls back to a single shard — with a diagnostic — when
    /// the indexing is not partitionable.
    Auto,
    /// Hash the named packet fields, RSS-style. The caller asserts that
    /// this key refines the pipelines' state partitioning; merged-state
    /// export is unavailable in this mode (per-shard states still are).
    Fields(Vec<String>),
}

/// The resolved steering rule (see [`ShardPlan`]).
#[derive(Debug, Clone, PartialEq)]
enum ResolvedSteer {
    /// Everything to shard 0 (the fallback).
    Single,
    /// Steer by the extracted flow key — bit-exact serial equivalence.
    Keyed(FlowKeySpec),
    /// Steer by a user-supplied field list.
    Fields(Vec<String>),
    /// Both pipelines are stateless: hash the whole packet. Only
    /// bit-identical packets are guaranteed to share a shard — a flow
    /// defined by a *subset* of fields may spread across shards (the
    /// pure pipelines make that state-safe, but callers who need
    /// per-flow ordering must steer with [`SteerMode::Fields`]).
    WholePacket,
    /// Replica mode: every shard runs a full copy of the sketch state,
    /// so *any* deterministic steering is state-safe. Packets are dealt
    /// round-robin by trace index — sketches exist for heavy-tailed
    /// traffic, where flow-hash steering would pile the elephant flows
    /// onto one shard and cap the speedup at the skew; dealing keeps
    /// the lanes balanced by construction. The named index-root fields
    /// (the union over both pipelines' replica specs) are carried for
    /// diagnostics and for deployments that want flow affinity anyway.
    Replica(Vec<String>),
}

/// How one side's (ingress or egress) serial state is reconstructed from
/// per-shard snapshots at collect time (see
/// [`ShardedSwitch::export_merged_ingress_state`]).
#[derive(Debug, Clone, PartialEq)]
enum MergePlan {
    /// The pipeline writes no state (or a single shard ran the whole
    /// trace): every snapshot already equals the serial state.
    Trivial,
    /// Exact partition: each array slot belongs to one key class, hence
    /// to one shard; read every slot from its owner.
    Owned(FlowKeySpec),
    /// Full replica per shard: fold snapshots elementwise per the spec
    /// ([`ReplicaSpec::merge_states`]) — sum of displacements for
    /// counter rows, max for membership bits. Bit-identical to serial.
    Replicated(ReplicaSpec),
    /// Explicit-field steering asserts nothing about state: no defined
    /// partition, merged export unavailable.
    Undefined,
}

/// The partitioning tier a [`ShardPlan`] resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardTier {
    /// Keyed, whole-packet, or explicit-field steering: sharded per-shard
    /// outputs and merged state are bit-identical to serial execution.
    Exact,
    /// At least one pipeline runs full sketch replicas merged at collect
    /// time. Merged *state* is still bit-identical to serial; per-packet
    /// *outputs* that read sketch state obey the sketch's own (ε, δ)
    /// approximation contract instead of bit-identity.
    Replicable,
    /// Single-shard fallback; [`ShardPlan::fallback`] carries the
    /// two-tier diagnostic.
    Fallback,
}

impl fmt::Display for ShardTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardTier::Exact => write!(f, "Exact"),
            ShardTier::Replicable => write!(f, "Replicable"),
            ShardTier::Fallback => write!(f, "Fallback"),
        }
    }
}

/// FNV-1a over a string, folded into a running hash (steering must be
/// deterministic across runs and platforms, so no `RandomState`).
fn hash_str(h: u64, s: &str) -> u64 {
    s.bytes()
        .fold(h, |h, b| (h ^ b as u64).wrapping_mul(0x0100_0000_01b3))
}

/// The resolved sharding decision for an ingress/egress pipeline pair.
///
/// Produced by [`ShardPlan::plan`]; inspect [`ShardPlan::effective`] and
/// [`ShardPlan::fallback`] to see whether the requested parallelism was
/// granted and, if not, why.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    requested: usize,
    effective: usize,
    steer: ResolvedSteer,
    merge_ingress: MergePlan,
    merge_egress: MergePlan,
    fallback: Option<String>,
}

/// All TAC statements of a compiled pipeline, in execution order.
fn stmts_of(pipeline: &AtomPipeline) -> Vec<TacStmt> {
    pipeline
        .stages
        .iter()
        .flatten()
        .flat_map(|a| a.codelet.stmts.iter().cloned())
        .collect()
}

/// Every packet field the pipeline can write on its way through —
/// assignments, state-read destinations, deparsed declared fields, and
/// the switch queue's metadata stamps.
fn written_fields(pipeline: &AtomPipeline) -> BTreeSet<String> {
    let mut written: BTreeSet<String> = BTreeSet::new();
    for stmt in stmts_of(pipeline) {
        match stmt {
            TacStmt::Assign { dst, .. } | TacStmt::ReadState { dst, .. } => {
                written.insert(dst);
            }
            TacStmt::WriteState { .. } => {}
        }
    }
    for (declared, internal) in &pipeline.output_map {
        // Identity pairs are pass-throughs, not writes (the deparser
        // only copies when the names differ).
        if declared != internal {
            written.insert(declared.clone());
        }
    }
    for meta in crate::switch::QUEUE_METADATA_FIELDS {
        written.insert(meta.to_string());
    }
    written
}

impl ShardPlan {
    /// Resolves the steering rule for a pipeline pair and a requested
    /// shard count.
    ///
    /// In [`SteerMode::Auto`], both pipelines' state indexing must be
    /// partitionable (see
    /// [`StateLayout::flow_key`](domino_ir::layout::StateLayout::flow_key));
    /// when both carry keyed state the two keys must agree, and an
    /// egress-derived key must not depend on fields the ingress pipeline
    /// (or the queue's metadata stamps, under their default names —
    /// [`QUEUE_METADATA_FIELDS`];
    /// renamed metadata is outside this model) rewrites — the dispatcher
    /// evaluates the key on the *input* packet. Any violation produces a
    /// single-shard plan carrying the diagnostic.
    pub fn plan(
        ingress: &AtomPipeline,
        egress: &AtomPipeline,
        shards: usize,
        mode: &SteerMode,
    ) -> ShardPlan {
        let requested = shards.max(1);
        if let SteerMode::Fields(fields) = mode {
            return ShardPlan {
                requested,
                effective: requested,
                steer: ResolvedSteer::Fields(fields.clone()),
                merge_ingress: MergePlan::Undefined,
                merge_egress: MergePlan::Undefined,
                fallback: None,
            };
        }

        let part_in = StateLayout::from_decls(&ingress.state_decls).flow_key(&stmts_of(ingress));
        let part_eg = StateLayout::from_decls(&egress.state_decls).flow_key(&stmts_of(egress));

        let egress_key_ok = |spec: &FlowKeySpec| -> Result<(), String> {
            let written = written_fields(ingress);
            for root in spec.roots() {
                if written.contains(root) {
                    return Err(format!(
                        "egress `{}` keys its state on `{root}`, which ingress \
                         `{}` (or the queue metadata) rewrites; the dispatcher \
                         cannot evaluate the key on the input packet",
                        egress.name, ingress.name
                    ));
                }
            }
            Ok(())
        };
        // Replica steering hashes the union of both sides' index roots —
        // steering never affects replica merge correctness (updates
        // commute), only which flows share a shard for output ordering.
        let replica_roots = |specs: &[&ReplicaSpec]| -> Vec<String> {
            let union: BTreeSet<String> = specs
                .iter()
                .flat_map(|s| s.steer_roots().iter().cloned())
                .collect();
            union.into_iter().collect()
        };

        use Partitionability::{Keyed, Replicable, Stateless};
        type Resolution = (ResolvedSteer, MergePlan, MergePlan);
        let resolved: Result<Resolution, String> = match (part_in, part_eg) {
            (Err(e), _) => Err(format!("ingress `{}`: {e}", ingress.name)),
            (_, Err(e)) => Err(format!("egress `{}`: {e}", egress.name)),
            (Ok(Stateless), Ok(Stateless)) => Ok((
                ResolvedSteer::WholePacket,
                MergePlan::Trivial,
                MergePlan::Trivial,
            )),
            (Ok(Keyed(k)), Ok(Stateless)) => Ok((
                ResolvedSteer::Keyed(k.clone()),
                MergePlan::Owned(k),
                MergePlan::Trivial,
            )),
            (Ok(Stateless), Ok(Keyed(k))) => egress_key_ok(&k).map(|()| {
                (
                    ResolvedSteer::Keyed(k.clone()),
                    MergePlan::Trivial,
                    MergePlan::Owned(k),
                )
            }),
            (Ok(Keyed(a)), Ok(Keyed(b))) => {
                if a != b {
                    Err(format!(
                        "ingress `{}` and egress `{}` partition their state by \
                         different flow keys (`{}` mod {} vs `{}` mod {})",
                        ingress.name,
                        egress.name,
                        a.key_field(),
                        a.modulus(),
                        b.key_field(),
                        b.modulus()
                    ))
                } else {
                    egress_key_ok(&b).map(|()| {
                        (
                            ResolvedSteer::Keyed(a.clone()),
                            MergePlan::Owned(a),
                            MergePlan::Owned(b),
                        )
                    })
                }
            }
            // Replica tiers: a replicable side is state-safe under any
            // deterministic steering, so it adapts to whatever the other
            // side needs.
            (Ok(Replicable(r)), Ok(Stateless)) => Ok((
                ResolvedSteer::Replica(replica_roots(&[&r])),
                MergePlan::Replicated(r),
                MergePlan::Trivial,
            )),
            (Ok(Stateless), Ok(Replicable(r))) => Ok((
                ResolvedSteer::Replica(replica_roots(&[&r])),
                MergePlan::Trivial,
                MergePlan::Replicated(r),
            )),
            (Ok(Replicable(a)), Ok(Replicable(b))) => Ok((
                ResolvedSteer::Replica(replica_roots(&[&a, &b])),
                MergePlan::Replicated(a),
                MergePlan::Replicated(b),
            )),
            // An exactly-keyed side dictates the steering (its partition
            // demands it); the replicated side tolerates it. The egress
            // key still has to be computable on the input packet.
            (Ok(Keyed(k)), Ok(Replicable(r))) => Ok((
                ResolvedSteer::Keyed(k.clone()),
                MergePlan::Owned(k),
                MergePlan::Replicated(r),
            )),
            (Ok(Replicable(r)), Ok(Keyed(k))) => egress_key_ok(&k).map(|()| {
                (
                    ResolvedSteer::Keyed(k.clone()),
                    MergePlan::Replicated(r),
                    MergePlan::Owned(k),
                )
            }),
        };

        match resolved {
            Ok((steer, merge_ingress, merge_egress)) => ShardPlan {
                requested,
                effective: requested,
                steer,
                merge_ingress,
                merge_egress,
                fallback: None,
            },
            Err(diagnostic) => ShardPlan {
                requested,
                effective: 1,
                steer: ResolvedSteer::Single,
                merge_ingress: MergePlan::Trivial,
                merge_egress: MergePlan::Trivial,
                fallback: Some(diagnostic),
            },
        }
    }

    /// The shard count the caller asked for.
    pub fn requested(&self) -> usize {
        self.requested
    }

    /// The shard count actually granted (1 on fallback).
    pub fn effective(&self) -> usize {
        self.effective
    }

    /// The diagnostic explaining a single-shard fallback, if any.
    pub fn fallback(&self) -> Option<&str> {
        self.fallback.as_deref()
    }

    /// The extracted flow key, when steering is key-derived.
    pub fn flow_key(&self) -> Option<&FlowKeySpec> {
        match &self.steer {
            ResolvedSteer::Keyed(spec) => Some(spec),
            _ => None,
        }
    }

    /// The partitioning tier this plan resolved to.
    pub fn tier(&self) -> ShardTier {
        if self.fallback.is_some() {
            ShardTier::Fallback
        } else if matches!(self.merge_ingress, MergePlan::Replicated(_))
            || matches!(self.merge_egress, MergePlan::Replicated(_))
        {
            ShardTier::Replicable
        } else {
            ShardTier::Exact
        }
    }

    /// The ingress pipeline's replica spec, when it runs in replica mode.
    pub fn ingress_replica(&self) -> Option<&ReplicaSpec> {
        match &self.merge_ingress {
            MergePlan::Replicated(spec) => Some(spec),
            _ => None,
        }
    }

    /// The egress pipeline's replica spec, when it runs in replica mode.
    pub fn egress_replica(&self) -> Option<&ReplicaSpec> {
        match &self.merge_egress {
            MergePlan::Replicated(spec) => Some(spec),
            _ => None,
        }
    }

    /// The shard the `idx`-th input packet steers to.
    ///
    /// Keyed, field, and whole-packet modes are pure functions of the
    /// packet content (`idx` is ignored); replica mode deals packets
    /// round-robin by trace index, which any replica merge tolerates
    /// (updates commute) and which stays load-balanced even on the
    /// heavy-tailed traces sketch programs are written for.
    pub fn steer(&self, idx: usize, pkt: &Packet) -> usize {
        let n = self.effective;
        if n <= 1 {
            return 0;
        }
        match &self.steer {
            ResolvedSteer::Single => 0,
            ResolvedSteer::Keyed(spec) => spec.shard_of(pkt, n),
            ResolvedSteer::Replica(_) => idx % n,
            ResolvedSteer::Fields(fields) if !fields.is_empty() => {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for f in fields {
                    h = hash_str(h, f);
                    h = mix64(h ^ pkt.get_or_zero(f) as u32 as u64);
                }
                (h % n as u64) as usize
            }
            ResolvedSteer::Fields(_) | ResolvedSteer::WholePacket => {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for (name, value) in pkt.iter() {
                    h = hash_str(h, name);
                    h = mix64(h ^ value as u32 as u64);
                }
                (h % n as u64) as usize
            }
        }
    }
}

impl fmt::Display for ShardPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} shards", self.effective, self.requested)?;
        match &self.steer {
            ResolvedSteer::Single => {
                let why = self.fallback.as_deref().unwrap_or("single shard requested");
                write!(f, ", single-shard fallback: {why}")
            }
            ResolvedSteer::Keyed(spec) => {
                write!(
                    f,
                    ", keyed on pkt.{} mod {}",
                    spec.key_field(),
                    spec.modulus()
                )
            }
            ResolvedSteer::Fields(fields) => write!(f, ", hashing [{}]", fields.join(", ")),
            ResolvedSteer::WholePacket => write!(f, ", stateless whole-packet hashing"),
            ResolvedSteer::Replica(roots) if roots.is_empty() => {
                write!(f, ", replicated sketches, dealt round-robin")
            }
            ResolvedSteer::Replica(roots) => {
                write!(
                    f,
                    ", replicated sketches, dealt round-robin (index roots [{}])",
                    roots.join(", ")
                )
            }
        }
    }
}

/// Wall-clock breakdown of one instrumented sharded run.
///
/// `shard_ns` is measured with the shards executed one after another on
/// the calling thread, so each number is that shard's *busy* time free of
/// scheduler interference — on an N-core machine the shards run
/// concurrently and the run completes in [`ShardTimings::critical_ns`]
/// (dispatcher and workers are pipelined, so the slower of the two lanes
/// bounds the run).
#[derive(Debug, Clone)]
pub struct ShardTimings {
    /// Time to steer the trace into per-shard batched streams.
    pub steer_ns: u128,
    /// Per-shard pipeline busy time.
    pub shard_ns: Vec<u128>,
    /// Time to merge the transmitted streams back together.
    pub merge_ns: u128,
}

impl ShardTimings {
    /// The modeled steady-state completion time on dedicated hardware:
    /// `max(steer, merge, slowest shard)`.
    ///
    /// The deployment shape is the standard one for software dataplanes:
    /// an RX (steering) core, N worker cores, a TX (merge) core, all
    /// pipelined batch by batch — so sustained throughput is bounded by
    /// the busiest single lane, not their sum.
    pub fn critical_ns(&self) -> u128 {
        self.shard_ns
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.steer_ns)
            .max(self.merge_ns)
    }
}

/// One instrumented sharded run: merged output plus the timing breakdown.
///
/// (For the un-merged per-shard view — the observable differential tests
/// compare — use [`ShardedSwitch::run_trace_partitioned`]; keeping both
/// alive would double the run's memory footprint, which matters at
/// millions of packets.)
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// The seeded round-robin merge of every shard's transmitted packets.
    pub merged: Vec<Packet>,
    /// Where the time went.
    pub timings: ShardTimings,
}

/// A switch sharded across N workers by flow steering: one independent
/// [`Switch`] (slot-compiled by default) per shard, fed with batched
/// packets, merged back deterministically.
///
/// # Panic freedom
///
/// No public entry point panics. The threaded run supervises its workers
/// (even a deliberately panicking [`PipelineEngine`] surfaces as a typed
/// [`SwitchError::Fault`], never an abort — see the module docs), and the
/// sequential twins propagate engine errors as `Result`s.
///
/// ```
/// use banzai::{AtomPipeline, ShardConfig, ShardedSwitch};
/// use domino_ir::Packet;
///
/// // Stateless pipelines shard by whole-packet hashing; 4 workers.
/// let mut sw = ShardedSwitch::new_slot(
///     &AtomPipeline::passthrough("in"),
///     &AtomPipeline::passthrough("out"),
///     ShardConfig::new(4),
/// )
/// .unwrap();
/// let trace: Vec<Packet> = (0..100).map(|i| Packet::new().with("flow", i % 7)).collect();
/// let out = sw.run(&trace).collect().unwrap();
/// assert_eq!(out.len(), 100);
/// assert_eq!(sw.transmitted(), 100);
/// assert_eq!(sw.plan().effective(), 4);
/// ```
#[derive(Debug)]
pub struct ShardedSwitch<E: PipelineEngine = SlotMachine> {
    plan: ShardPlan,
    shards: Vec<Switch<E>>,
    /// The compiled pipelines, kept for rebuilding a failed shard's
    /// engines after a fault (through the plain [`PipelineEngine::build`]
    /// hook, so replacements are pristine — a [`crate::fault::FaultyEngine`]
    /// shard is rebuilt *without* its fault schedule).
    ingress_pipeline: AtomPipeline,
    egress_pipeline: AtomPipeline,
    capacity: usize,
    batch: usize,
    ring: usize,
    seed: u64,
    backpressure: Backpressure,
    watchdog_ms: u64,
    /// The scheduling policy every shard runs (and the merge obeys).
    sched: SchedSpec,
    /// The dedicated serial egress engine of the scheduling path: after a
    /// PIFO the output link is a single serialized stream, so the
    /// post-merge egress pass runs here — its state evolves over exactly
    /// the serial departure sequence, bit-identical to a serial switch's
    /// egress engine. Built lazily on the first
    /// [`ShardedSwitch::run_sched_trace`].
    sched_egress: Option<E>,
    /// Counters salvaged from shards that have since been rebuilt, plus
    /// feeder-side backpressure sheds and post-merge scheduling
    /// departures — folded into [`Self::transmitted`] /
    /// [`Self::drop_counters`] so the totals stay conservation-exact
    /// across faults.
    extra_transmitted: u64,
    extra_drops: DropCounters,
}

impl ShardedSwitch<SlotMachine> {
    /// Builds a sharded switch running every shard on the slot-compiled
    /// fast path (the production configuration).
    pub fn new_slot(
        ingress: &AtomPipeline,
        egress: &AtomPipeline,
        config: ShardConfig,
    ) -> Result<ShardedSwitch<SlotMachine>, SwitchError> {
        ShardedSwitch::new(ingress, egress, config)
    }
}

impl<E: PipelineEngine> ShardedSwitch<E> {
    /// Builds a sharded switch over any [`PipelineEngine`].
    ///
    /// Never fails on a non-partitionable pipeline pair — that produces a
    /// working single-shard plan with [`ShardPlan::fallback`] set.
    /// Errors only if the engine itself cannot be built.
    pub fn new(
        ingress: &AtomPipeline,
        egress: &AtomPipeline,
        config: ShardConfig,
    ) -> Result<ShardedSwitch<E>, SwitchError> {
        ShardedSwitch::new_with(ingress, egress, config, |_, ing, eg, capacity| {
            Ok(Switch::from_engines(
                E::build(ing)?,
                E::build(eg)?,
                capacity,
            ))
        })
    }

    /// Builds a sharded switch with a caller-supplied per-shard factory —
    /// the constructor-driven injection point the chaos suite uses to arm
    /// individual shards with [`crate::fault::FaultyEngine`] schedules.
    ///
    /// The factory is called once per shard with `(shard index, ingress
    /// pipeline, egress pipeline, queue capacity)`. Shards **rebuilt
    /// after a fault** do *not* go through the factory; they use the
    /// plain [`PipelineEngine::build`] hook, so a replacement engine
    /// never inherits its predecessor's fault schedule.
    pub fn new_with<F>(
        ingress: &AtomPipeline,
        egress: &AtomPipeline,
        config: ShardConfig,
        mut factory: F,
    ) -> Result<ShardedSwitch<E>, SwitchError>
    where
        F: FnMut(usize, &AtomPipeline, &AtomPipeline, usize) -> Result<Switch<E>, SwitchError>,
    {
        let plan = ShardPlan::plan(ingress, egress, config.shards, &config.steer);
        let mut shards = Vec::with_capacity(plan.effective());
        for s in 0..plan.effective() {
            // The factory builds the engines; the configured scheduling
            // policy is applied uniformly on top (so injected-fault
            // factories compose with programmed schedulers).
            shards.push(
                factory(s, ingress, egress, config.capacity)?.with_scheduler(config.sched.clone()),
            );
        }
        Ok(ShardedSwitch {
            plan,
            shards,
            ingress_pipeline: ingress.clone(),
            egress_pipeline: egress.clone(),
            capacity: config.capacity,
            batch: config.batch.max(1),
            ring: config.ring.max(1),
            seed: config.seed,
            backpressure: config.backpressure,
            watchdog_ms: config.watchdog_ms.max(1),
            sched: config.sched,
            sched_egress: None,
            extra_transmitted: 0,
            extra_drops: DropCounters::new(),
        })
    }

    /// The resolved sharding decision.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of live shards (== [`ShardPlan::effective`]).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured overload policy.
    pub fn backpressure(&self) -> Backpressure {
        self.backpressure
    }

    /// Packets dropped across all shards for any reason, dispatcher
    /// backpressure sheds and counters salvaged from rebuilt shards
    /// included.
    pub fn drops(&self) -> u64 {
        self.drop_counters().total()
    }

    /// Per-reason drop counters merged across all shards (see
    /// [`crate::switch::DropCounters`]), dispatcher sheds and salvaged
    /// counters included.
    pub fn drop_counters(&self) -> DropCounters {
        let mut merged = self.extra_drops.clone();
        for s in &self.shards {
            merged.merge(s.drop_counters());
        }
        merged
    }

    /// Packets transmitted across all shards (outputs salvaged from
    /// since-rebuilt shards included).
    pub fn transmitted(&self) -> u64 {
        self.shards.iter().map(|s| s.transmitted()).sum::<u64>() + self.extra_transmitted
    }

    /// Drains the source into per-shard `(global_cycle, packet)` streams.
    /// Returns the streams, the number of packets pulled, and the
    /// source's error if it failed rather than ended (the streams then
    /// hold everything pulled *before* the failure).
    #[allow(clippy::type_complexity)]
    fn partition_source<S: PacketSource>(
        &self,
        source: &mut S,
    ) -> (Vec<Vec<(i64, Packet)>>, u64, Option<SourceError>) {
        let mut streams: Vec<Vec<(i64, Packet)>> = vec![Vec::new(); self.shards.len()];
        let mut pulled: u64 = 0;
        let error = loop {
            match source.next_packet() {
                Ok(Some(pkt)) => {
                    let i = pulled as usize;
                    pulled += 1;
                    streams[self.plan.steer(i, &pkt)].push((i as i64, pkt));
                }
                Ok(None) => break None,
                Err(e) => break Some(e),
            }
        };
        (streams, pulled, error)
    }

    /// Merges per-shard output streams by seeded round-robin: starting at
    /// a seed-derived shard, take one packet from each non-exhausted
    /// shard in cyclic order. Per-flow order is preserved for flows as
    /// the steering key defines them (such a flow lives on one shard and
    /// shard order is kept — under whole-packet steering that means
    /// identical packets; use [`SteerMode::Fields`] for coarser flows;
    /// replica mode deals by trace index, so its "flows" are the index
    /// residue classes); the cross-flow interleave is a pure function of
    /// the seed and shard count, so repeated runs are bit-identical
    /// regardless of thread scheduling.
    pub fn merge(&self, parts: Vec<Vec<Packet>>) -> Vec<Packet> {
        let n = parts.len();
        if n == 1 {
            return parts.into_iter().next().unwrap_or_default();
        }
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let start = (mix64(self.seed) % n as u64) as usize;
        let mut iters: Vec<std::vec::IntoIter<Packet>> =
            parts.into_iter().map(|p| p.into_iter()).collect();
        let mut out = Vec::with_capacity(total);
        while out.len() < total {
            for off in 0..n {
                if let Some(p) = iters[(start + off) % n].next() {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Runs the trace across all shards on **supervised worker threads**:
    /// the caller thread steers packets into per-shard bounded batch
    /// rings, each worker drains its ring through its own switch inside
    /// `catch_unwind`, and the outputs merge deterministically.
    ///
    /// # Failure model
    ///
    /// * A **panicking** worker is isolated: its panic is caught, the
    ///   remaining shards drain cleanly, and the run returns
    ///   [`SwitchError::Fault`] with a [`FaultReport`] naming the shard,
    ///   the global index of the packet that triggered the fault, the
    ///   panic payload, every surviving shard's complete output and state
    ///   snapshot, the failed shard's completed-batch output prefix, and
    ///   [`Accounting`] that balances exactly
    ///   (`offered == transmitted + dropped + lost_in_fault`).
    /// * A **full ring** degrades per the configured [`Backpressure`]
    ///   policy: `Block` waits up to [`ShardConfig::watchdog_ms`] then
    ///   declares the worker stalled; `Shed` drops the batch under the
    ///   [`DropReason::Backpressure`] counter and keeps going.
    /// * A **stalled or silently dead** worker is detected by the
    ///   feeder/collector watchdog and abandoned — this method never
    ///   hangs on a wedged worker and never joins one.
    ///
    /// After a fault, failed shards are **rebuilt** with fresh engines
    /// (surviving shards keep their state), so the switch remains usable;
    /// warm-start a rebuilt shard from the salvaged snapshots via
    /// [`ShardedSwitch::import_state`] if desired. In the practically
    /// unreachable case that rebuilding itself fails, that `Build` error
    /// is returned and the switch must be reconstructed.
    #[deprecated(
        since = "0.2.0",
        note = "use the unified run builder: `switch.run(trace).collect()`"
    )]
    pub fn run_trace(&mut self, trace: &[Packet]) -> Result<Vec<Packet>, SwitchError>
    where
        E: Send + 'static,
    {
        self.run(trace).collect()
    }

    /// Opens a streaming run session: anything convertible to a
    /// [`PacketSource`] drives the sharded switch through the returned
    /// [`ShardedRun`] builder — the single entry point the old
    /// `run_trace` / `run_sched_trace` / `run_trace_partitioned` /
    /// `run_trace_instrumented` family collapsed into.
    ///
    /// The supervised terminal ([`ShardedRun::collect`]) pulls from the
    /// source on the dispatcher thread and feeds the bounded batch rings,
    /// so *input* memory stays O(batch × shards) however long the run;
    /// [`ShardedRun::for_each`] additionally streams outputs to a sink.
    ///
    /// ```
    /// use banzai::{AtomPipeline, ShardConfig, ShardedSwitch};
    /// use domino_ir::Packet;
    ///
    /// let mut sw = ShardedSwitch::new_slot(
    ///     &AtomPipeline::passthrough("in"),
    ///     &AtomPipeline::passthrough("out"),
    ///     ShardConfig::new(2),
    /// )
    /// .unwrap();
    /// let trace: Vec<Packet> = (0..50).map(|i| Packet::new().with("flow", i % 5)).collect();
    /// let merged = sw.run(&trace).collect().unwrap();
    /// assert_eq!(merged.len(), 50);
    /// ```
    pub fn run<S: IntoPacketSource>(&mut self, source: S) -> ShardedRun<'_, E, S::Source> {
        ShardedRun {
            switch: self,
            source: source.into_packet_source(),
        }
    }

    /// Opens a streaming byte-frame run session over anything convertible
    /// to a [`FrameSource`] — the sharded twin of
    /// [`Switch::run_frames`], terminated by
    /// [`ShardedFrameRun::partitioned`].
    pub fn run_frames<'c, S: IntoFrameSource>(
        &mut self,
        source: S,
        cfg: &'c WireConfig,
    ) -> ShardedFrameRun<'_, 'c, E, S::Source> {
        ShardedFrameRun {
            switch: self,
            source: source.into_frame_source(),
            cfg,
        }
    }

    /// The supervised streaming core behind [`ShardedRun::collect`]: the
    /// historical threaded `run_trace`, generalized to pull from a
    /// [`PacketSource`]. A source that errors mid-stream stops the
    /// feeder; every worker still drains its ring and reports, so the
    /// returned [`FaultReport`] carries a [`SourceFault`] alongside
    /// complete per-shard salvage and closed books.
    fn run_source_threaded<S: PacketSource>(
        &mut self,
        source: &mut S,
    ) -> Result<Vec<Packet>, SwitchError>
    where
        E: Send + 'static,
    {
        let n = self.shards.len();
        // Move the switches into their workers; survivors come back
        // through the outcome channels, failed shards are rebuilt below.
        let switches = std::mem::take(&mut self.shards);
        let Scatter {
            offered,
            sheds,
            collected,
            pulled,
            source_error,
        } = self.supervised_scatter(switches, source, worker_loop);

        // Account for dispatcher sheds whether or not anything faulted.
        for &shed in &sheds {
            self.extra_drops.bump_by(DropReason::Backpressure, shed);
        }

        let faulted = source_error.is_some()
            || collected
                .iter()
                .any(|c| !matches!(c, Collected::Reported(WorkerOutcome::Done(..))));
        if !faulted {
            let mut parts: Vec<Vec<Packet>> = Vec::with_capacity(n);
            for c in collected {
                if let Collected::Reported(WorkerOutcome::Done(sw, out)) = c {
                    self.shards.push(*sw);
                    parts.push(out);
                }
            }
            return Ok(self.merge(parts));
        }

        // At least one worker (or the source itself) faulted: salvage
        // everything reachable and assemble the report.
        let mut failures: Vec<ShardError> = Vec::new();
        let mut salvage: Vec<ShardSalvage> = Vec::with_capacity(n);
        let mut parts: Vec<Vec<Packet>> = vec![Vec::new(); n];
        let mut restored: Vec<Option<Switch<E>>> = (0..n).map(|_| None).collect();
        for (s, c) in collected.into_iter().enumerate() {
            let mut shard_drops = DropCounters::new();
            shard_drops.bump_by(DropReason::Backpressure, sheds[s]);
            match c {
                Collected::Reported(WorkerOutcome::Done(sw, out)) => {
                    shard_drops.merge(sw.drop_counters());
                    salvage.push(ShardSalvage {
                        shard: s,
                        failed: false,
                        offered: offered[s],
                        output: out.clone(),
                        drops: shard_drops,
                        state: Some((sw.export_ingress_state(), sw.export_egress_state())),
                    });
                    parts[s] = out;
                    restored[s] = Some(*sw);
                }
                Collected::Reported(WorkerOutcome::Fault {
                    out,
                    packet,
                    cause,
                    drops,
                }) => {
                    shard_drops.merge(&drops);
                    failures.push(ShardError {
                        shard: s,
                        packet,
                        cause,
                    });
                    self.extra_transmitted += out.len() as u64;
                    self.extra_drops.merge(&drops);
                    salvage.push(ShardSalvage {
                        shard: s,
                        failed: true,
                        offered: offered[s],
                        output: out,
                        drops: shard_drops,
                        state: None,
                    });
                }
                Collected::Stalled => {
                    failures.push(ShardError {
                        shard: s,
                        packet: None,
                        cause: FaultCause::Stall {
                            watchdog_ms: self.watchdog_ms,
                        },
                    });
                    salvage.push(ShardSalvage {
                        shard: s,
                        failed: true,
                        offered: offered[s],
                        output: Vec::new(),
                        drops: shard_drops,
                        state: None,
                    });
                }
                Collected::Vanished => {
                    failures.push(ShardError {
                        shard: s,
                        packet: None,
                        cause: FaultCause::Disconnected,
                    });
                    salvage.push(ShardSalvage {
                        shard: s,
                        failed: true,
                        offered: offered[s],
                        output: Vec::new(),
                        drops: shard_drops,
                        state: None,
                    });
                }
            }
        }

        // Rebuild dead shards with fresh engines so the switch stays
        // usable (through the plain build hook: no inherited faults).
        let mut shards = Vec::with_capacity(n);
        for slot in restored {
            shards.push(match slot {
                Some(sw) => sw,
                None => Switch::from_engines(
                    E::build(&self.ingress_pipeline)?,
                    E::build(&self.egress_pipeline)?,
                    self.capacity,
                )
                .with_scheduler(self.sched.clone()),
            });
        }
        self.shards = shards;

        let accounting = Accounting {
            offered: pulled,
            transmitted: salvage.iter().map(|s| s.output.len() as u64).sum(),
            dropped: salvage.iter().map(|s| s.drops.total()).sum(),
            lost_in_fault: salvage.iter().map(ShardSalvage::lost).sum(),
        };
        let merged = self.merge(parts);
        Err(SwitchError::Fault(Box::new(FaultReport {
            failures,
            source: source_error.map(|error| SourceFault { at: pulled, error }),
            salvage,
            merged,
            accounting,
        })))
    }

    /// The shared supervision skeleton of the threaded forwarding and
    /// scheduling cores: spawn one worker per shard, pull packets off the
    /// [`PacketSource`] one at a time and steer them into bounded batch
    /// rings under the configured [`Backpressure`] policy, and collect
    /// each worker's outcome bounded by the watchdog. Generic over the
    /// worker body and its outcome type, so forwarding runs and
    /// scheduling runs get the identical failure model.
    ///
    /// Input memory is O(batch × shards): at most one pending batch per
    /// shard on the dispatcher plus `ring` batches in each channel —
    /// never the whole trace. A source error stops the pull loop; the
    /// rings are then closed normally, so every live worker drains what
    /// it was fed and reports, and the error rides back in
    /// [`Scatter::source_error`].
    fn supervised_scatter<O, W, S>(
        &self,
        switches: Vec<Switch<E>>,
        source: &mut S,
        worker: W,
    ) -> Scatter<O>
    where
        E: Send + 'static,
        O: Send + 'static,
        S: PacketSource,
        W: Fn(Switch<E>, mpsc::Receiver<StampedBatch>) -> O + Send + Clone + 'static,
    {
        let n = switches.len();
        let batch_size = self.batch;
        let watchdog = Duration::from_millis(self.watchdog_ms);
        let policy = self.backpressure;

        let mut txs: Vec<BatchSender> = Vec::with_capacity(n);
        let mut dones = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for sw in switches {
            let (tx, rx) = mpsc::sync_channel::<StampedBatch>(self.ring);
            let (done_tx, done_rx) = mpsc::channel::<O>();
            let work = worker.clone();
            handles.push(std::thread::spawn(move || {
                let outcome = work(sw, rx);
                let _ = done_tx.send(outcome);
            }));
            txs.push(Some(tx));
            dones.push(done_rx);
        }

        // Feed. A shard marked dead/stalled keeps accumulating `offered`
        // (for the books) but receives nothing further.
        let mut offered = vec![0u64; n];
        let mut sheds = vec![0u64; n];
        let mut stalled = vec![false; n];
        let mut dead = vec![false; n];
        let mut pending: Vec<StampedBatch> =
            (0..n).map(|_| Vec::with_capacity(batch_size)).collect();
        let flush = |s: usize,
                     batch: StampedBatch,
                     txs: &mut [BatchSender],
                     sheds: &mut [u64],
                     stalled: &mut [bool],
                     dead: &mut [bool]| {
            let len = batch.len() as u64;
            let Some(tx) = txs[s].as_ref() else { return };
            match feed_batch(tx, batch, policy, watchdog) {
                FeedResult::Sent => {}
                FeedResult::Shed => sheds[s] += len,
                FeedResult::Stalled => {
                    stalled[s] = true;
                    txs[s] = None;
                }
                FeedResult::Dead => {
                    dead[s] = true;
                    txs[s] = None;
                }
            }
        };
        let mut pulled: u64 = 0;
        let mut source_error: Option<SourceError> = None;
        loop {
            let pkt = match source.next_packet() {
                Ok(Some(pkt)) => pkt,
                Ok(None) => break,
                Err(e) => {
                    source_error = Some(e);
                    break;
                }
            };
            let i = pulled as usize;
            pulled += 1;
            let s = self.plan.steer(i, &pkt);
            offered[s] += 1;
            if dead[s] || stalled[s] {
                continue;
            }
            pending[s].push((i as i64, pkt));
            if pending[s].len() == batch_size {
                let full = std::mem::replace(&mut pending[s], Vec::with_capacity(batch_size));
                flush(s, full, &mut txs, &mut sheds, &mut stalled, &mut dead);
            }
        }
        for (s, rest) in pending.into_iter().enumerate() {
            if !rest.is_empty() && !dead[s] && !stalled[s] {
                flush(s, rest, &mut txs, &mut sheds, &mut stalled, &mut dead);
            }
        }
        drop(txs); // close every ring: drained workers exit their loops

        // Collect, bounded by the watchdog per shard. A worker that never
        // reports is abandoned (its thread handle is dropped, detaching
        // it) — never joined, so a wedged engine cannot hang the caller.
        let mut collected: Vec<Collected<O>> = Vec::with_capacity(n);
        for (s, (done_rx, handle)) in dones.into_iter().zip(handles).enumerate() {
            if stalled[s] {
                collected.push(Collected::Stalled);
                drop(handle);
                continue;
            }
            match done_rx.recv_timeout(watchdog) {
                Ok(outcome) => {
                    let _ = handle.join();
                    collected.push(Collected::Reported(outcome));
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    collected.push(Collected::Stalled);
                    drop(handle);
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    let _ = handle.join();
                    collected.push(Collected::Vanished);
                }
            }
        }
        Scatter {
            offered,
            sheds,
            collected,
            pulled,
            source_error,
        }
    }

    /// Runs a **scheduling experiment** across all shards on supervised
    /// worker threads — the sharded twin of
    /// [`Switch::run_sched_trace`], bit-identical to it on
    /// [`ShardTier::Exact`] plans.
    ///
    /// Each worker ingress-processes its steered packets and pushes them
    /// into a **shard-local PIFO** under the configured [`SchedSpec`];
    /// at collect time the per-shard streams (each already in pop order)
    /// merge by `(class, rank, global arrival cycle)` — exactly the
    /// serial PIFO's pop order, because the serial tie-break *is* arrival
    /// order — and a dedicated serial egress engine assigns departure
    /// cycles with the same recurrence as the serial switch. Admission is
    /// the serial burst rule applied per worker: during the arrival phase
    /// the queue only grows, so the serial switch admits exactly the
    /// first `capacity` arrivals — a globally computable rule, which is
    /// what keeps sharded `SchedFull` drops bit-identical to serial even
    /// under overload.
    ///
    /// # Failure model
    ///
    /// Supervision is identical to [`ShardedSwitch::run_trace`] (same
    /// feeder, rings, watchdog, and collector). A faulted run returns
    /// [`SwitchError::Fault`]; the failed shard's salvage is its PIFO
    /// contents **popped in rank order** (the queue lives outside the
    /// per-batch `catch_unwind`, so a mid-batch panic cannot corrupt or
    /// lose it), and [`Accounting`] closes the books exactly.
    #[deprecated(
        since = "0.2.0",
        note = "use the unified run builder: `switch.run(trace).scheduled().collect()`"
    )]
    pub fn run_sched_trace(&mut self, trace: &[Packet]) -> Result<Vec<SchedDeparture>, SwitchError>
    where
        E: Send + 'static,
    {
        self.run(trace).scheduled().collect()
    }

    /// The supervised scheduling core behind [`ShardedSchedRun::collect`],
    /// generalized to pull from a [`PacketSource`]. A source error lands
    /// like a worker fault: the feeder stops, every shard-local PIFO
    /// drains in rank order into salvage, and the report carries a
    /// [`SourceFault`] with closed books.
    fn run_sched_source<S: PacketSource>(
        &mut self,
        source: &mut S,
    ) -> Result<Vec<SchedDeparture>, SwitchError>
    where
        E: Send + 'static,
    {
        let n = self.shards.len();
        let capacity = self.capacity;
        let switches = std::mem::take(&mut self.shards);
        let Scatter {
            offered,
            sheds,
            collected,
            pulled,
            source_error,
        } = self.supervised_scatter(switches, source, move |sw, rx| {
            sched_worker_loop(sw, rx, capacity)
        });

        for &shed in &sheds {
            self.extra_drops.bump_by(DropReason::Backpressure, shed);
        }

        let faulted = source_error.is_some()
            || collected
                .iter()
                .any(|c| !matches!(c, Collected::Reported(SchedOutcome::Done(..))));
        if !faulted {
            let mut entries: Vec<(SchedKey, i64, Packet)> = Vec::new();
            for c in collected {
                if let Collected::Reported(SchedOutcome::Done(sw, stream)) = c {
                    self.shards.push(*sw);
                    entries.extend(stream);
                }
            }
            // Each per-shard stream is sorted by (key, shard-local
            // arrival); the global arrival cycle is unique, so sorting
            // the union by (key, arrival) *is* the deterministic k-way
            // merge — and equals the serial pop order.
            entries.sort_by_key(|&(key, arrival, _)| (key, arrival));

            // Serial egress pass over the merged departure sequence, on
            // the dedicated engine (see the field docs).
            if self.sched_egress.is_none() {
                self.sched_egress = Some(E::build(&self.egress_pipeline)?);
            }
            let egress = self.sched_egress.as_mut().expect("just built");
            let total = entries.len();
            let shaping = self.sched.is_shaping();
            let mut next_free = pulled as i64;
            let mut out = Vec::with_capacity(total);
            for (k, (key, arrival, mut pkt)) in entries.into_iter().enumerate() {
                let departure = if shaping {
                    next_free.max(key.rank)
                } else {
                    next_free
                };
                pkt.set(QUEUE_METADATA_FIELDS[0], arrival as i32);
                pkt.set(QUEUE_METADATA_FIELDS[1], departure as i32);
                pkt.set(QUEUE_METADATA_FIELDS[2], (total - k - 1) as i32);
                let egressed = egress.process(pkt);
                self.extra_transmitted += 1;
                out.push(SchedDeparture {
                    arrival,
                    key,
                    departure,
                    pkt: egressed,
                });
                next_free = departure + 1;
            }
            return Ok(out);
        }

        // At least one worker faulted: salvage everything reachable and
        // assemble the report. Nothing reached egress (the run faults
        // before the merge), so every salvaged stream — survivor and
        // failed alike — is booked through `extra_transmitted`; no
        // shard's own transmit counter saw these packets.
        let mut failures: Vec<ShardError> = Vec::new();
        let mut salvage: Vec<ShardSalvage> = Vec::with_capacity(n);
        let mut parts: Vec<Vec<Packet>> = vec![Vec::new(); n];
        let mut restored: Vec<Option<Switch<E>>> = (0..n).map(|_| None).collect();
        for (s, c) in collected.into_iter().enumerate() {
            let mut shard_drops = DropCounters::new();
            shard_drops.bump_by(DropReason::Backpressure, sheds[s]);
            match c {
                Collected::Reported(SchedOutcome::Done(sw, stream)) => {
                    shard_drops.merge(sw.drop_counters());
                    let out: Vec<Packet> = stream.into_iter().map(|(_, _, p)| p).collect();
                    self.extra_transmitted += out.len() as u64;
                    salvage.push(ShardSalvage {
                        shard: s,
                        failed: false,
                        offered: offered[s],
                        output: out.clone(),
                        drops: shard_drops,
                        state: Some((sw.export_ingress_state(), sw.export_egress_state())),
                    });
                    parts[s] = out;
                    restored[s] = Some(*sw);
                }
                Collected::Reported(SchedOutcome::Fault {
                    out,
                    packet,
                    cause,
                    drops,
                }) => {
                    shard_drops.merge(&drops);
                    failures.push(ShardError {
                        shard: s,
                        packet,
                        cause,
                    });
                    self.extra_transmitted += out.len() as u64;
                    self.extra_drops.merge(&drops);
                    salvage.push(ShardSalvage {
                        shard: s,
                        failed: true,
                        offered: offered[s],
                        output: out,
                        drops: shard_drops,
                        state: None,
                    });
                }
                Collected::Stalled => {
                    failures.push(ShardError {
                        shard: s,
                        packet: None,
                        cause: FaultCause::Stall {
                            watchdog_ms: self.watchdog_ms,
                        },
                    });
                    salvage.push(ShardSalvage {
                        shard: s,
                        failed: true,
                        offered: offered[s],
                        output: Vec::new(),
                        drops: shard_drops,
                        state: None,
                    });
                }
                Collected::Vanished => {
                    failures.push(ShardError {
                        shard: s,
                        packet: None,
                        cause: FaultCause::Disconnected,
                    });
                    salvage.push(ShardSalvage {
                        shard: s,
                        failed: true,
                        offered: offered[s],
                        output: Vec::new(),
                        drops: shard_drops,
                        state: None,
                    });
                }
            }
        }

        // Rebuild dead shards with fresh engines so the switch stays
        // usable (through the plain build hook: no inherited faults).
        let mut shards = Vec::with_capacity(n);
        for slot in restored {
            shards.push(match slot {
                Some(sw) => sw,
                None => Switch::from_engines(
                    E::build(&self.ingress_pipeline)?,
                    E::build(&self.egress_pipeline)?,
                    self.capacity,
                )
                .with_scheduler(self.sched.clone()),
            });
        }
        self.shards = shards;

        let accounting = Accounting {
            offered: pulled,
            transmitted: salvage.iter().map(|s| s.output.len() as u64).sum(),
            dropped: salvage.iter().map(|s| s.drops.total()).sum(),
            lost_in_fault: salvage.iter().map(ShardSalvage::lost).sum(),
        };
        let merged = self.merge(parts);
        Err(SwitchError::Fault(Box::new(FaultReport {
            failures,
            source: source_error.map(|error| SourceFault { at: pulled, error }),
            salvage,
            merged,
            accounting,
        })))
    }

    /// The scheduling policy every shard runs.
    pub fn scheduler(&self) -> &SchedSpec {
        &self.sched
    }

    /// Snapshot of the dedicated scheduling-path egress engine's state
    /// (`None` until the first [`ShardedSwitch::run_sched_trace`]).
    /// Bit-identical to a serial switch's egress state over the same
    /// departures, because the post-merge egress pass *is* serial.
    pub fn export_sched_egress_state(&self) -> Option<StateStore> {
        self.sched_egress.as_ref().map(PipelineEngine::export_state)
    }

    /// Runs the trace shard-by-shard on the calling thread and returns
    /// each shard's output subsequence (un-merged) — the observable the
    /// differential suites compare against serial execution.
    ///
    /// This sequential twin is **unsupervised** (no threads, no rings):
    /// engine errors propagate as `Result`s, engine panics propagate as
    /// panics. Supervision lives on [`ShardedRun::collect`].
    #[deprecated(
        since = "0.2.0",
        note = "use the unified run builder: `switch.run(trace).partitioned()`"
    )]
    pub fn run_trace_partitioned(
        &mut self,
        trace: &[Packet],
    ) -> Result<Vec<Vec<Packet>>, SwitchError> {
        self.run(trace).partitioned()
    }

    /// The sequential per-shard core behind [`ShardedRun::partitioned`].
    /// A source error still runs every stream gathered before the
    /// failure, then reports a [`SourceFault`] with complete per-shard
    /// salvage (outputs, per-run drop deltas, state snapshots).
    fn run_source_partitioned<S: PacketSource>(
        &mut self,
        source: &mut S,
    ) -> Result<Vec<Vec<Packet>>, SwitchError> {
        let (streams, pulled, source_error) = self.partition_source(source);
        let drops_before: Vec<DropCounters> = self
            .shards
            .iter()
            .map(|s| s.drop_counters().clone())
            .collect();
        let mut parts: Vec<Vec<Packet>> = Vec::with_capacity(self.shards.len());
        for (sw, stream) in self.shards.iter_mut().zip(&streams) {
            parts.push(sw.run_stamped_batch(stream)?);
        }
        match source_error {
            None => Ok(parts),
            Some(error) => {
                let lens: Vec<usize> = streams.iter().map(Vec::len).collect();
                Err(self.partitioned_source_fault(pulled, error, &lens, parts, &drops_before))
            }
        }
    }

    /// Assembles the [`SourceFault`] report of an unsupervised
    /// (partitioned / instrumented) run whose source failed mid-stream:
    /// every shard ran its pre-failure stream to completion, so salvage
    /// is complete — outputs, per-run drop deltas, and state snapshots —
    /// and the books close with `lost_in_fault == 0`.
    fn partitioned_source_fault(
        &mut self,
        pulled: u64,
        error: SourceError,
        stream_lens: &[usize],
        parts: Vec<Vec<Packet>>,
        drops_before: &[DropCounters],
    ) -> SwitchError {
        let mut salvage: Vec<ShardSalvage> = Vec::with_capacity(parts.len());
        for (s, (sw, out)) in self.shards.iter().zip(&parts).enumerate() {
            salvage.push(ShardSalvage {
                shard: s,
                failed: false,
                offered: stream_lens[s] as u64,
                output: out.clone(),
                drops: sw.drop_counters().since(&drops_before[s]),
                state: Some((sw.export_ingress_state(), sw.export_egress_state())),
            });
        }
        let accounting = Accounting {
            offered: pulled,
            transmitted: salvage.iter().map(|s| s.output.len() as u64).sum(),
            dropped: salvage.iter().map(|s| s.drops.total()).sum(),
            lost_in_fault: salvage.iter().map(ShardSalvage::lost).sum(),
        };
        let merged = self.merge(parts);
        SwitchError::Fault(Box::new(FaultReport {
            failures: Vec::new(),
            source: Some(SourceFault { at: pulled, error }),
            salvage,
            merged,
            accounting,
        }))
    }

    /// The single-threaded streaming core behind [`ShardedRun::for_each`]:
    /// pull one packet, run it through its steered shard, buffer the
    /// shard's output, and emit buffered packets to the sink in exactly
    /// the seeded round-robin order [`ShardedSwitch::merge`] produces —
    /// one packet per cursor visit, waiting on a shard whose next output
    /// has not materialized yet and skipping it only once the stream has
    /// ended (when an empty buffer is provably final). Output is
    /// bit-identical to [`ShardedRun::collect`].
    ///
    /// Memory is bounded by the *output skew*: per-shard buffers hold
    /// only packets the round-robin cursor has not reached, so balanced
    /// steering keeps them O(1); a pathologically imbalanced trace (every
    /// packet on one shard) degrades to buffering that shard's output.
    fn run_source_streamed<S: PacketSource>(
        &mut self,
        source: &mut S,
        sink: &mut dyn FnMut(Packet),
    ) -> Result<RunStats, SwitchError> {
        let n = self.shards.len();
        let drops_before: Vec<DropCounters> = self
            .shards
            .iter()
            .map(|s| s.drop_counters().clone())
            .collect();
        let mut offered = vec![0u64; n];
        let mut buffers: Vec<VecDeque<Packet>> = (0..n).map(|_| VecDeque::new()).collect();
        let mut cursor = (mix64(self.seed) % n as u64) as usize;
        let mut pulled: u64 = 0;
        let mut emitted: u64 = 0;
        let mut source_error: Option<SourceError> = None;
        let mut ended = false;
        while !ended {
            match source.next_packet() {
                Ok(Some(pkt)) => {
                    let i = pulled as usize;
                    pulled += 1;
                    let s = self.plan.steer(i, &pkt);
                    offered[s] += 1;
                    let out = self.shards[s].run_stamped_batch(&[(i as i64, pkt)])?;
                    buffers[s].extend(out);
                }
                Ok(None) => ended = true,
                Err(e) => {
                    source_error = Some(e);
                    ended = true;
                }
            }
            loop {
                if let Some(pkt) = buffers[cursor].pop_front() {
                    emitted += 1;
                    sink(pkt);
                    cursor = (cursor + 1) % n;
                } else if ended {
                    if buffers.iter().all(VecDeque::is_empty) {
                        break;
                    }
                    cursor = (cursor + 1) % n;
                } else {
                    break;
                }
            }
        }
        let stats = RunStats {
            offered: pulled,
            transmitted: emitted,
        };
        let Some(error) = source_error else {
            return Ok(stats);
        };
        // Outputs already streamed to the sink, so salvage carries the
        // books and state snapshots but no packet payloads.
        let mut salvage: Vec<ShardSalvage> = Vec::with_capacity(n);
        let mut dropped = 0u64;
        for (s, sw) in self.shards.iter().enumerate() {
            let delta = sw.drop_counters().since(&drops_before[s]);
            dropped += delta.total();
            salvage.push(ShardSalvage {
                shard: s,
                failed: false,
                offered: offered[s],
                output: Vec::new(),
                drops: delta,
                state: Some((sw.export_ingress_state(), sw.export_egress_state())),
            });
        }
        let accounting = Accounting {
            offered: pulled,
            transmitted: emitted,
            dropped,
            lost_in_fault: pulled.saturating_sub(emitted + dropped),
        };
        Err(SwitchError::Fault(Box::new(FaultReport {
            failures: Vec::new(),
            source: Some(SourceFault { at: pulled, error }),
            salvage,
            merged: Vec::new(),
            accounting,
        })))
    }

    /// Like [`ShardedRun::partitioned`], but instrumented: times the
    /// steer, each shard's busy run, and the merge. Used by the E10
    /// scaling harness (on a single-core host, per-shard busy times are
    /// the honest scaling observable — see [`ShardTimings`]).
    #[deprecated(
        since = "0.2.0",
        note = "use the unified run builder: `switch.run(trace).instrumented()`"
    )]
    pub fn run_trace_instrumented(&mut self, trace: &[Packet]) -> Result<ShardRun, SwitchError> {
        self.run(trace).instrumented()
    }

    /// The timed sequential core behind [`ShardedRun::instrumented`].
    fn run_source_instrumented<S: PacketSource>(
        &mut self,
        source: &mut S,
    ) -> Result<ShardRun, SwitchError> {
        let t = Instant::now();
        let (streams, pulled, source_error) = self.partition_source(source);
        let steer_ns = t.elapsed().as_nanos();
        let stream_lens: Vec<usize> = streams.iter().map(Vec::len).collect();
        let drops_before: Vec<DropCounters> = self
            .shards
            .iter()
            .map(|s| s.drop_counters().clone())
            .collect();

        // Lane times accumulate over *interleaved slices* rather than one
        // contiguous run per lane. Host interference (virtualization
        // steal, frequency excursions) arrives in epochs lasting seconds —
        // longer than a lane — so contiguous timing charges a whole epoch
        // to whichever lane it lands on and skews the critical path.
        // Round-robin slicing spreads any epoch across all lanes evenly,
        // which is exactly what the model needs: honest *relative* lane
        // balance. Each slice is a contiguous stamped subsequence, and at
        // line rate the queue drains per packet, so concatenated slice
        // outputs equal the one-shot run bit for bit.
        const LANE_SLICES: usize = 64;
        let n = self.shards.len();
        let mut partitioned: Vec<Vec<Packet>> = streams
            .iter()
            .map(|s| Vec::with_capacity(s.len()))
            .collect();
        let mut shard_ns = vec![0u128; n];
        for k in 0..LANE_SLICES {
            for (s, (sw, stream)) in self.shards.iter_mut().zip(&streams).enumerate() {
                let len = stream.len();
                let (lo, hi) = (len * k / LANE_SLICES, len * (k + 1) / LANE_SLICES);
                if lo == hi {
                    continue;
                }
                let t = Instant::now();
                let out = sw.run_stamped_batch(&stream[lo..hi])?;
                shard_ns[s] += t.elapsed().as_nanos();
                partitioned[s].extend(out);
            }
        }
        drop(streams);

        if let Some(error) = source_error {
            return Err(self.partitioned_source_fault(
                pulled,
                error,
                &stream_lens,
                partitioned,
                &drops_before,
            ));
        }

        // Time the merge the production path performs: a move, no clones.
        let t = Instant::now();
        let merged = self.merge(partitioned);
        let merge_ns = t.elapsed().as_nanos();

        Ok(ShardRun {
            merged,
            timings: ShardTimings {
                steer_ns,
                shard_ns,
                merge_ns,
            },
        })
    }

    /// Steers a **byte-level** trace and runs each shard's frame stream
    /// on the calling thread ([`Switch::run_wire_trace`]), returning the
    /// per-shard output frames (un-merged).
    ///
    /// The dispatcher runs the same parser the shards run
    /// ([`wire::parse`]) and steers by the parsed packet and frame
    /// index, so a frame lands on exactly the shard its packet-born twin
    /// would (under replica mode both paths deal by index). Malformed
    /// frames carry no fields to steer by; they are dealt round-robin by
    /// frame index, so exactly one shard's parser re-rejects each one and
    /// counts the typed drop — frame conservation holds shard by shard.
    #[deprecated(
        since = "0.2.0",
        note = "use the unified run builder: `switch.run_frames(frames, cfg).partitioned()`"
    )]
    pub fn run_wire_trace_partitioned<F: AsRef<[u8]>>(
        &mut self,
        frames: &[F],
        cfg: &WireConfig,
    ) -> Vec<Vec<Vec<u8>>> {
        self.run_frames(frames, cfg)
            .partitioned()
            .expect("slice-backed sources cannot fail mid-stream")
    }

    /// The byte-level sequential core behind
    /// [`ShardedFrameRun::partitioned`]: pull frames, steer each by its
    /// parsed packet (malformed frames dealt round-robin by index), run
    /// every shard's stream, and return the per-shard output frames. A
    /// source error reports a [`SourceFault`] whose salvage carries the
    /// per-shard books and state snapshots (output frames are bytes, not
    /// packets, so the salvage `output` vectors stay empty — the typed
    /// parse-drop counters still close the accounting exactly).
    fn run_frames_partitioned<S: FrameSource>(
        &mut self,
        source: &mut S,
        cfg: &WireConfig,
    ) -> Result<Vec<Vec<Vec<u8>>>, SwitchError> {
        let shards = self.shards.len();
        let mut streams: Vec<Vec<Vec<u8>>> = vec![Vec::new(); shards];
        let mut pulled: u64 = 0;
        let mut source_error: Option<SourceError> = None;
        loop {
            match source.next_frame() {
                Ok(Some(frame)) => {
                    let i = pulled as usize;
                    pulled += 1;
                    let shard = match wire::parse(frame, cfg) {
                        Ok(wp) => self.plan.steer(i, &wp.pkt),
                        Err(_) => i % shards,
                    };
                    streams[shard].push(frame.to_vec());
                }
                Ok(None) => break,
                Err(e) => {
                    source_error = Some(e);
                    break;
                }
            }
        }
        let drops_before: Vec<DropCounters> = self
            .shards
            .iter()
            .map(|s| s.drop_counters().clone())
            .collect();
        let mut parts: Vec<Vec<Vec<u8>>> = Vec::with_capacity(shards);
        for (sw, stream) in self.shards.iter_mut().zip(&streams) {
            parts.push(
                sw.run_frames(stream, cfg)
                    .collect()
                    .expect("slice-backed sources cannot fail mid-stream"),
            );
        }
        let Some(error) = source_error else {
            return Ok(parts);
        };
        let transmitted: u64 = parts.iter().map(|p| p.len() as u64).sum();
        let mut salvage: Vec<ShardSalvage> = Vec::with_capacity(shards);
        let mut dropped = 0u64;
        for (s, sw) in self.shards.iter().enumerate() {
            let delta = sw.drop_counters().since(&drops_before[s]);
            dropped += delta.total();
            salvage.push(ShardSalvage {
                shard: s,
                failed: false,
                offered: streams[s].len() as u64,
                output: Vec::new(),
                drops: delta,
                state: Some((sw.export_ingress_state(), sw.export_egress_state())),
            });
        }
        let accounting = Accounting {
            offered: pulled,
            transmitted,
            dropped,
            lost_in_fault: pulled.saturating_sub(transmitted + dropped),
        };
        Err(SwitchError::Fault(Box::new(FaultReport {
            failures: Vec::new(),
            source: Some(SourceFault { at: pulled, error }),
            salvage,
            merged: Vec::new(),
            accounting,
        })))
    }

    /// Each shard's `(ingress, egress)` state snapshot.
    pub fn export_shard_states(&self) -> Vec<(StateStore, StateStore)> {
        self.shards
            .iter()
            .map(|s| (s.export_ingress_state(), s.export_egress_state()))
            .collect()
    }

    /// Reconstructs the serial switch's ingress state from the shards:
    /// every array slot is read from the shard that owns its key class.
    ///
    /// Available when steering is key-derived (or trivially with one
    /// shard / stateless pipelines); explicit-field steering defines no
    /// state partition and returns
    /// [`SwitchError::StatePartition`].
    pub fn export_merged_ingress_state(&self) -> Result<StateStore, SwitchError> {
        self.merged_state(
            &self.plan.merge_ingress,
            &self.ingress_pipeline.state_decls,
            |s| s.export_ingress_state(),
        )
    }

    /// Reconstructs the serial switch's egress state from the shards.
    pub fn export_merged_egress_state(&self) -> Result<StateStore, SwitchError> {
        self.merged_state(
            &self.plan.merge_egress,
            &self.egress_pipeline.state_decls,
            |s| s.export_egress_state(),
        )
    }

    fn merged_state(
        &self,
        plan: &MergePlan,
        decls: &[StateVar],
        export: impl Fn(&Switch<E>) -> StateStore,
    ) -> Result<StateStore, SwitchError> {
        if self.shards.len() == 1 {
            return Ok(export(&self.shards[0]));
        }
        match plan {
            // A trivial side writes no state: all shards still hold the
            // declared initializers, as does the serial switch.
            MergePlan::Trivial => Ok(export(&self.shards[0])),
            MergePlan::Undefined => Err(SwitchError::StatePartition(
                "steering by explicit fields does not define a state partition; \
                 read per-shard snapshots via export_shard_states"
                    .to_string(),
            )),
            MergePlan::Owned(spec) => {
                let snaps: Vec<StateStore> = self.shards.iter().map(&export).collect();
                let mut merged = StateStore::from_decls(decls);
                for d in decls {
                    match d.kind {
                        // Keyed extraction forbids scalar *access*, so a
                        // declared scalar is untouched everywhere and the
                        // initializer already in `merged` is the value.
                        StateKind::Scalar => {}
                        StateKind::Array { size } => {
                            for k in 0..size {
                                let owner =
                                    FlowKeySpec::shard_of_class(k % spec.modulus(), snaps.len());
                                merged.write_array(
                                    &d.name,
                                    k as i32,
                                    snaps[owner].read_array(&d.name, k as i32),
                                );
                            }
                        }
                    }
                }
                Ok(merged)
            }
            MergePlan::Replicated(spec) => {
                let snaps: Vec<StateStore> = self.shards.iter().map(&export).collect();
                Ok(spec.merge_states(&snaps))
            }
        }
    }

    /// Broadcasts serial state snapshots to every shard — the import half
    /// of the per-partition state hooks. Each shard only ever touches its
    /// own key classes, so handing every shard the full snapshot
    /// reproduces exactly the partition a merged export would select.
    pub fn import_state(&mut self, ingress: &StateStore, egress: &StateStore) {
        for sw in &mut self.shards {
            sw.import_ingress_state(ingress);
            sw.import_egress_state(egress);
        }
    }
}

/// A pending sharded streaming run, opened by [`ShardedSwitch::run`].
///
/// Terminal methods pick the execution strategy:
///
/// * [`ShardedRun::collect`] — supervised worker threads, merged output
///   (the production path);
/// * [`ShardedRun::for_each`] — single-threaded, outputs streamed to a
///   sink in merge order (bounded memory end to end);
/// * [`ShardedRun::partitioned`] — unsupervised sequential twin, un-merged
///   per-shard outputs (the differential observable);
/// * [`ShardedRun::instrumented`] — the partitioned run with lane timings;
/// * [`ShardedRun::scheduled`] — switch to the PIFO scheduling experiment.
#[must_use = "a run session does nothing until a terminal method consumes it"]
pub struct ShardedRun<'s, E: PipelineEngine, S: PacketSource> {
    switch: &'s mut ShardedSwitch<E>,
    source: S,
}

impl<'s, E: PipelineEngine, S: PacketSource> ShardedRun<'s, E, S> {
    /// Switches this run to the scheduling experiment under the
    /// [`SchedSpec`] the switch was configured with (see
    /// [`ShardConfig::with_scheduler`]).
    pub fn scheduled(self) -> ShardedSchedRun<'s, E, S> {
        ShardedSchedRun {
            switch: self.switch,
            source: self.source,
        }
    }

    /// Runs the source across all shards on **supervised worker
    /// threads** — the caller thread pulls packets and steers them into
    /// per-shard bounded batch rings, each worker drains its ring through
    /// its own switch inside `catch_unwind`, and the outputs merge
    /// deterministically. Input memory is O(batch × ring × shards).
    ///
    /// # Failure model
    ///
    /// * A **panicking** worker is isolated: its panic is caught, the
    ///   remaining shards drain cleanly, and the run returns
    ///   [`SwitchError::Fault`] with a [`FaultReport`] naming the shard,
    ///   the global index of the packet that triggered the fault, the
    ///   panic payload, every surviving shard's complete output and state
    ///   snapshot, the failed shard's completed-batch output prefix, and
    ///   [`Accounting`] that balances exactly
    ///   (`offered == transmitted + dropped + lost_in_fault`).
    /// * A **source error** mid-stream stops the feeder; every worker
    ///   still drains what it was fed, and the report carries the
    ///   [`SourceFault`] alongside complete per-shard salvage.
    /// * A **full ring** degrades per the configured [`Backpressure`]
    ///   policy: `Block` waits up to [`ShardConfig::watchdog_ms`] then
    ///   declares the worker stalled; `Shed` drops the batch under the
    ///   [`DropReason::Backpressure`] counter and keeps going.
    /// * A **stalled or silently dead** worker is detected by the
    ///   feeder/collector watchdog and abandoned — this method never
    ///   hangs on a wedged worker and never joins one.
    ///
    /// After a fault, failed shards are **rebuilt** with fresh engines
    /// (surviving shards keep their state), so the switch remains usable;
    /// warm-start a rebuilt shard from the salvaged snapshots via
    /// [`ShardedSwitch::import_state`] if desired.
    pub fn collect(mut self) -> Result<Vec<Packet>, SwitchError>
    where
        E: Send + 'static,
    {
        self.switch.run_source_threaded(&mut self.source)
    }

    /// Streams every merged output packet to `sink` instead of
    /// materializing them, single-threaded, in exactly the order
    /// [`ShardedRun::collect`] would return — bit-identical output with
    /// memory bounded by the steering balance rather than the trace
    /// length. Returns the run's [`RunStats`].
    pub fn for_each<F: FnMut(Packet)>(mut self, mut sink: F) -> Result<RunStats, SwitchError> {
        self.switch.run_source_streamed(&mut self.source, &mut sink)
    }

    /// Runs shard-by-shard on the calling thread and returns each shard's
    /// output subsequence (un-merged) — the observable the differential
    /// suites compare against serial execution. Unsupervised: engine
    /// errors propagate as `Result`s, engine panics as panics.
    pub fn partitioned(mut self) -> Result<Vec<Vec<Packet>>, SwitchError> {
        self.switch.run_source_partitioned(&mut self.source)
    }

    /// Like [`ShardedRun::partitioned`], but timed (steer, per-shard busy
    /// runs, merge) and merged — see [`ShardTimings`].
    pub fn instrumented(mut self) -> Result<ShardRun, SwitchError> {
        self.switch.run_source_instrumented(&mut self.source)
    }
}

/// A pending sharded **scheduling** run (see [`ShardedRun::scheduled`]).
#[must_use = "a run session does nothing until a terminal method consumes it"]
pub struct ShardedSchedRun<'s, E: PipelineEngine, S: PacketSource> {
    switch: &'s mut ShardedSwitch<E>,
    source: S,
}

impl<E: PipelineEngine, S: PacketSource> ShardedSchedRun<'_, E, S> {
    /// Runs the scheduling experiment across all shards on supervised
    /// worker threads — the sharded twin of the serial
    /// `run(..).scheduled().collect()`, bit-identical to it on
    /// [`ShardTier::Exact`] plans.
    ///
    /// Each worker ingress-processes its steered packets and pushes them
    /// into a **shard-local PIFO** under the configured [`SchedSpec`];
    /// at collect time the per-shard streams (each already in pop order)
    /// merge by `(class, rank, global arrival cycle)` — exactly the
    /// serial PIFO's pop order, because the serial tie-break *is* arrival
    /// order — and a dedicated serial egress engine assigns departure
    /// cycles with the same recurrence as the serial switch. Admission is
    /// the serial burst rule applied per worker: during the arrival phase
    /// the queue only grows, so the serial switch admits exactly the
    /// first `capacity` arrivals — a globally computable rule, which is
    /// what keeps sharded `SchedFull` drops bit-identical to serial even
    /// under overload.
    ///
    /// # Failure model
    ///
    /// Supervision is identical to [`ShardedRun::collect`] (same feeder,
    /// rings, watchdog, and collector). A faulted run returns
    /// [`SwitchError::Fault`]; the failed shard's salvage is its PIFO
    /// contents **popped in rank order** (the queue lives outside the
    /// per-batch `catch_unwind`, so a mid-batch panic cannot corrupt or
    /// lose it), and [`Accounting`] closes the books exactly.
    pub fn collect(mut self) -> Result<Vec<SchedDeparture>, SwitchError>
    where
        E: Send + 'static,
    {
        self.switch.run_sched_source(&mut self.source)
    }
}

/// A pending sharded **byte-level** run, opened by
/// [`ShardedSwitch::run_frames`].
#[must_use = "a run session does nothing until a terminal method consumes it"]
pub struct ShardedFrameRun<'s, 'c, E: PipelineEngine, S: FrameSource> {
    switch: &'s mut ShardedSwitch<E>,
    source: S,
    cfg: &'c WireConfig,
}

impl<E: PipelineEngine, S: FrameSource> ShardedFrameRun<'_, '_, E, S> {
    /// Steers the frame stream and runs each shard's slice on the calling
    /// thread ([`Switch::run_frames`]), returning the per-shard output
    /// frames (un-merged).
    ///
    /// The dispatcher runs the same parser the shards run
    /// ([`wire::parse`]) and steers by the parsed packet and frame
    /// index, so a frame lands on exactly the shard its packet-born twin
    /// would (under replica mode both paths deal by index). Malformed
    /// frames carry no fields to steer by; they are dealt round-robin by
    /// frame index, so exactly one shard's parser re-rejects each one and
    /// counts the typed drop — frame conservation holds shard by shard.
    pub fn partitioned(mut self) -> Result<Vec<Vec<Vec<u8>>>, SwitchError> {
        self.switch
            .run_frames_partitioned(&mut self.source, self.cfg)
    }
}

/// What a shard worker reports back on its outcome channel.
enum WorkerOutcome<E: PipelineEngine> {
    /// Ring drained, switch handed back with its complete output stream.
    Done(Box<Switch<E>>, Vec<Packet>),
    /// The engine faulted mid-batch. The switch is discarded (its state
    /// is suspect after an unwind), but its drop counters — plain
    /// integers, safe to read — ride along, as does the output prefix of
    /// every *completed* batch and the global index of the packet whose
    /// processing faulted.
    Fault {
        out: Vec<Packet>,
        packet: Option<u64>,
        cause: FaultCause,
        drops: DropCounters,
    },
}

/// One shard worker: drain the ring batch by batch, each batch inside
/// `catch_unwind` so an engine panic is contained to this shard.
fn worker_loop<E: PipelineEngine>(
    mut sw: Switch<E>,
    rx: mpsc::Receiver<Vec<(i64, Packet)>>,
) -> WorkerOutcome<E> {
    let mut out: Vec<Packet> = Vec::new();
    while let Ok(batch) = rx.recv() {
        // `transmitted + drops` advances by exactly one per fully handled
        // packet, so the delta across the failing batch pinpoints the
        // packet whose processing faulted.
        let before = sw.transmitted() + sw.drops();
        match catch_unwind(AssertUnwindSafe(|| sw.run_stamped_batch(&batch))) {
            Ok(Ok(mut produced)) => out.append(&mut produced),
            Ok(Err(err)) => {
                return WorkerOutcome::Fault {
                    packet: batch.first().map(|(t, _)| *t as u64),
                    cause: FaultCause::Error(err.to_string()),
                    drops: sw.drop_counters().clone(),
                    out,
                };
            }
            Err(payload) => {
                let handled = (sw.transmitted() + sw.drops() - before) as usize;
                return WorkerOutcome::Fault {
                    packet: batch.get(handled).map(|(t, _)| *t as u64),
                    // `payload.as_ref()`, not `&payload`: the latter
                    // unsizes the Box itself into `dyn Any` and every
                    // downcast misses.
                    cause: FaultCause::Panic(panic_payload_string(payload.as_ref())),
                    drops: sw.drop_counters().clone(),
                    out,
                };
            }
        }
    }
    WorkerOutcome::Done(Box::new(sw), out)
}

/// Renders a caught panic payload (`String` and `&str` payloads verbatim,
/// anything else a placeholder).
fn panic_payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// What the collector observed for one shard (generic over the worker's
/// outcome type: [`WorkerOutcome`] for forwarding runs, [`SchedOutcome`]
/// for scheduling runs).
enum Collected<O> {
    /// The worker reported an outcome within the watchdog window.
    Reported(O),
    /// No outcome within the window — the worker was abandoned.
    Stalled,
    /// The outcome channel disconnected with no report: the thread died
    /// outside the supervised path.
    Vanished,
}

/// Everything the dispatcher observed during one supervised scatter.
struct Scatter<O> {
    /// Packets steered to each shard (fed or not — the books).
    offered: Vec<u64>,
    /// Packets shed per shard under [`Backpressure::Shed`].
    sheds: Vec<u64>,
    /// Each worker's collected outcome.
    collected: Vec<Collected<O>>,
    /// Total packets pulled from the source before it ended or failed.
    pulled: u64,
    /// The source's mid-stream error, if it failed rather than ended.
    source_error: Option<SourceError>,
}

/// What a scheduling-run worker reports back (see
/// [`ShardedSwitch::run_sched_trace`]).
enum SchedOutcome<E: PipelineEngine> {
    /// Ring drained; the switch comes back with the shard-local PIFO's
    /// full contents popped in order: `(key, global arrival cycle,
    /// ingress-processed packet)`.
    Done(Box<Switch<E>>, Vec<(SchedKey, i64, Packet)>),
    /// The engine faulted mid-batch. `out` is the shard's PIFO contents
    /// at the instant of the fault, salvaged in rank order.
    Fault {
        out: Vec<Packet>,
        packet: Option<u64>,
        cause: FaultCause,
        drops: DropCounters,
    },
}

/// One scheduling-run worker: ingress-process each steered packet,
/// admit it into the shard-local PIFO (or count the configured full-drop
/// reason), each batch inside `catch_unwind`. The PIFO itself lives
/// *outside* the unwind scope: a panicking engine loses at most the
/// in-flight packet, never the queue — which is what makes rank-ordered
/// salvage possible.
fn sched_worker_loop<E: PipelineEngine>(
    mut sw: Switch<E>,
    rx: mpsc::Receiver<StampedBatch>,
    capacity: usize,
) -> SchedOutcome<E> {
    let spec = sw.scheduler().clone();
    let reason = spec.full_drop_reason();
    // Unbounded: the serial admission rule below bounds total occupancy
    // across *all* shards at `capacity`, so no per-shard bound applies.
    let mut pifo: SchedQueue<(i64, Packet)> = spec.build_queue(usize::MAX);
    while let Ok(batch) = rx.recv() {
        // `pifo.len() + drops` advances by one per fully handled packet,
        // so the delta across a failing batch pinpoints the fault.
        let before = pifo.len() as u64 + sw.drops();
        let res = catch_unwind(AssertUnwindSafe(|| {
            for (t, pkt) in &batch {
                let processed = sw.ingress_process(pkt.clone());
                // The serial burst admission: during the arrival phase
                // the queue only grows, so the serial switch admits
                // exactly the arrivals with global cycle < capacity.
                if (*t as usize) < capacity {
                    let key = spec.key_of(&processed);
                    let _ = pifo.push(key, (*t, processed));
                } else {
                    sw.record_drop(reason);
                }
            }
        }));
        if let Err(payload) = res {
            let handled = (pifo.len() as u64 + sw.drops() - before) as usize;
            let mut salvaged = Vec::with_capacity(pifo.len());
            while let Some((_, (_, pkt))) = pifo.pop() {
                salvaged.push(pkt);
            }
            return SchedOutcome::Fault {
                packet: batch.get(handled).map(|(t, _)| *t as u64),
                cause: FaultCause::Panic(panic_payload_string(payload.as_ref())),
                drops: sw.drop_counters().clone(),
                out: salvaged,
            };
        }
    }
    let mut stream = Vec::with_capacity(pifo.len());
    while let Some((key, (t, pkt))) = pifo.pop() {
        stream.push((key, t, pkt));
    }
    SchedOutcome::Done(Box::new(sw), stream)
}

/// Outcome of pushing one batch into a shard's ring.
enum FeedResult {
    Sent,
    /// Ring full under [`Backpressure::Shed`]: the batch was dropped.
    Shed,
    /// Ring full past the watchdog under [`Backpressure::Block`].
    Stalled,
    /// The worker's receiver is gone (the worker exited — it faulted).
    Dead,
}

/// Pushes a batch with the configured overload policy. Never blocks past
/// `watchdog`.
fn feed_batch(
    tx: &mpsc::SyncSender<Vec<(i64, Packet)>>,
    batch: Vec<(i64, Packet)>,
    policy: Backpressure,
    watchdog: Duration,
) -> FeedResult {
    let mut batch = batch;
    let start = Instant::now();
    loop {
        match tx.try_send(batch) {
            Ok(()) => return FeedResult::Sent,
            Err(mpsc::TrySendError::Disconnected(_)) => return FeedResult::Dead,
            Err(mpsc::TrySendError::Full(b)) => match policy {
                Backpressure::Shed => return FeedResult::Shed,
                Backpressure::Block => {
                    if start.elapsed() >= watchdog {
                        return FeedResult::Stalled;
                    }
                    batch = b;
                    // SyncSender has no send_timeout; a short sleep keeps
                    // the spin polite while staying far under any
                    // realistic watchdog granularity.
                    std::thread::sleep(Duration::from_micros(200));
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{AtomRole, CompiledAtom};
    use domino_ast::BinOp;
    use domino_ir::{Codelet, Operand, StateRef, TacRhs};

    /// A per-flow array counter: `counts[pkt.flow] += 1`, exposing the
    /// new count in `pkt.c` — keyed on the input field `flow`.
    fn array_counter(name: &str, arr: &str, size: u32) -> AtomPipeline {
        let body = Codelet::new(vec![
            TacStmt::ReadState {
                dst: "old".into(),
                state: StateRef::Array {
                    name: arr.into(),
                    index: Operand::Field("flow".into()),
                },
            },
            TacStmt::Assign {
                dst: "c".into(),
                rhs: TacRhs::Binary(BinOp::Add, Operand::Field("old".into()), Operand::Const(1)),
            },
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: arr.into(),
                    index: Operand::Field("flow".into()),
                },
                src: Operand::Field("c".into()),
            },
        ]);
        AtomPipeline {
            name: name.into(),
            target_name: "test".into(),
            stages: vec![vec![CompiledAtom {
                codelet: body,
                role: AtomRole::Stateless,
            }]],
            state_decls: vec![StateVar {
                name: arr.into(),
                kind: StateKind::Array { size },
                init: 0,
            }],
            declared_fields: vec!["c".into()],
            output_map: vec![],
        }
    }

    /// A global scalar counter — deliberately *not* partitionable.
    fn scalar_counter() -> AtomPipeline {
        let body = Codelet::new(vec![
            TacStmt::ReadState {
                dst: "old".into(),
                state: StateRef::Scalar("total".into()),
            },
            TacStmt::Assign {
                dst: "c".into(),
                rhs: TacRhs::Binary(BinOp::Add, Operand::Field("old".into()), Operand::Const(1)),
            },
            TacStmt::WriteState {
                state: StateRef::Scalar("total".into()),
                src: Operand::Field("c".into()),
            },
        ]);
        AtomPipeline {
            name: "scalar_counter".into(),
            target_name: "test".into(),
            stages: vec![vec![CompiledAtom {
                codelet: body,
                role: AtomRole::Stateless,
            }]],
            state_decls: vec![StateVar {
                name: "total".into(),
                kind: StateKind::Scalar,
                init: 0,
            }],
            declared_fields: vec!["c".into()],
            output_map: vec![],
        }
    }

    fn flow_trace(n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                Packet::new()
                    .with("flow", (i * 7 % 23) as i32)
                    .with("seq", i as i32)
            })
            .collect()
    }

    fn passthrough(name: &str) -> AtomPipeline {
        AtomPipeline::passthrough(name)
    }

    #[test]
    fn plan_extracts_flow_key_from_array_counter() {
        let p = array_counter("count", "counts", 64);
        let plan = ShardPlan::plan(&p, &passthrough("out"), 4, &SteerMode::Auto);
        assert_eq!(plan.effective(), 4);
        assert!(plan.fallback().is_none());
        let spec = plan.flow_key().expect("keyed");
        assert_eq!(spec.key_field(), "flow");
        assert_eq!(spec.modulus(), 64);
        assert!(plan.to_string().contains("keyed on pkt.flow mod 64"));
    }

    #[test]
    fn plan_falls_back_on_scalar_state_with_diagnostic() {
        let plan = ShardPlan::plan(&scalar_counter(), &passthrough("out"), 8, &SteerMode::Auto);
        assert_eq!(plan.requested(), 8);
        assert_eq!(plan.effective(), 1);
        let why = plan.fallback().expect("diagnostic");
        assert!(why.contains("scalar state `total`"), "{why}");
    }

    #[test]
    fn plan_rejects_mismatched_ingress_egress_keys() {
        let ingress = array_counter("in", "a", 8);
        let mut egress = array_counter("eg", "b", 16);
        // Re-key egress on a different field.
        for stage in &mut egress.stages {
            for atom in stage {
                for stmt in &mut atom.codelet.stmts {
                    match stmt {
                        TacStmt::ReadState { state, .. } | TacStmt::WriteState { state, .. } => {
                            if let StateRef::Array { index, .. } = state {
                                *index = Operand::Field("other".into());
                            }
                        }
                        TacStmt::Assign { .. } => {}
                    }
                }
            }
        }
        let plan = ShardPlan::plan(&ingress, &egress, 4, &SteerMode::Auto);
        assert_eq!(plan.effective(), 1);
        assert!(
            plan.fallback().unwrap().contains("different flow keys"),
            "{}",
            plan.fallback().unwrap()
        );
    }

    #[test]
    fn sharded_counter_equals_serial_per_shard_and_in_state() {
        let ingress = array_counter("count", "counts", 64);
        let egress = passthrough("out");
        let trace = flow_trace(500);

        let mut serial = Switch::new_slot(&ingress, &egress, 512).unwrap();
        let serial_out = serial.run(&trace).collect().unwrap();

        for shards in [1, 2, 4, 8] {
            let mut sharded =
                ShardedSwitch::new_slot(&ingress, &egress, ShardConfig::new(shards)).unwrap();
            let parts = sharded.run(&trace).partitioned().unwrap();
            // Each shard's outputs are the serial outputs at the
            // positions steered to it (serial output order == input
            // order at line rate).
            for (s, part) in parts.iter().enumerate() {
                let expected: Vec<Packet> = trace
                    .iter()
                    .enumerate()
                    .filter(|&(i, p)| sharded.plan().steer(i, p) == s)
                    .map(|(i, _)| serial_out[i].clone())
                    .collect();
                assert_eq!(part, &expected, "shard {s} of {shards}");
            }
            assert_eq!(
                sharded.export_merged_ingress_state().unwrap(),
                serial.export_ingress_state(),
                "{shards} shards: merged state"
            );
            assert_eq!(sharded.transmitted(), serial.transmitted());
            assert_eq!(sharded.drops(), 0);
        }
    }

    #[test]
    fn threaded_run_is_deterministic_and_equals_sequential_merge() {
        let ingress = array_counter("count", "counts", 64);
        let egress = passthrough("out");
        let trace = flow_trace(700);
        let cfg = ShardConfig::new(4).with_batch(32);

        let mut a = ShardedSwitch::new_slot(&ingress, &egress, cfg.clone()).unwrap();
        let threaded = a.run(&trace).collect().unwrap();

        let mut b = ShardedSwitch::new_slot(&ingress, &egress, cfg.clone()).unwrap();
        let run = b.run(&trace).instrumented().unwrap();
        assert_eq!(threaded, run.merged);
        assert_eq!(
            a.export_merged_ingress_state().unwrap(),
            b.export_merged_ingress_state().unwrap()
        );

        // And a second threaded run from fresh state is bit-identical.
        let mut c = ShardedSwitch::new_slot(&ingress, &egress, cfg).unwrap();
        assert_eq!(c.run(&trace).collect().unwrap(), threaded);
    }

    #[test]
    fn merge_preserves_per_shard_order_and_multiset() {
        let sw = ShardedSwitch::new_slot(
            &passthrough("in"),
            &passthrough("out"),
            ShardConfig::new(3).with_seed(7),
        )
        .unwrap();
        let parts: Vec<Vec<Packet>> = (0..3)
            .map(|s| {
                (0..4)
                    .map(|i| Packet::new().with("shard", s).with("i", i))
                    .collect()
            })
            .collect();
        let merged = sw.merge(parts.clone());
        assert_eq!(merged.len(), 12);
        for s in 0..3 {
            let sub: Vec<&Packet> = merged
                .iter()
                .filter(|p| p.get("shard") == Some(s))
                .collect();
            let orig: Vec<&Packet> = parts[s as usize].iter().collect();
            assert_eq!(sub, orig, "shard {s} order broken by merge");
        }
    }

    #[test]
    fn fallback_shard_still_matches_serial_exactly() {
        let ingress = scalar_counter();
        let egress = passthrough("out");
        let trace = flow_trace(200);
        let mut serial = Switch::new_slot(&ingress, &egress, 512).unwrap();
        let serial_out = serial.run(&trace).collect().unwrap();
        let mut sharded = ShardedSwitch::new_slot(&ingress, &egress, ShardConfig::new(4)).unwrap();
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.run(&trace).collect().unwrap(), serial_out);
        assert_eq!(
            sharded.export_merged_ingress_state().unwrap(),
            serial.export_ingress_state()
        );
    }

    #[test]
    fn import_state_broadcast_roundtrips_through_merged_export() {
        let ingress = array_counter("count", "counts", 64);
        let egress = passthrough("out");
        // Build a warm serial state.
        let mut serial = Switch::new_slot(&ingress, &egress, 512).unwrap();
        serial.run(&flow_trace(300)).collect().unwrap();
        let warm_in = serial.export_ingress_state();
        let warm_eg = serial.export_egress_state();

        let mut sharded = ShardedSwitch::new_slot(&ingress, &egress, ShardConfig::new(4)).unwrap();
        sharded.import_state(&warm_in, &warm_eg);
        assert_eq!(sharded.export_merged_ingress_state().unwrap(), warm_in);

        // Continuing from the warm state matches serial continuation.
        let more = flow_trace(100);
        let serial_more = serial.run(&more).collect().unwrap();
        let parts = sharded.run(&more).partitioned().unwrap();
        let mut flat: Vec<(usize, Packet)> = Vec::new();
        for (s, part) in parts.iter().enumerate() {
            let idxs: Vec<usize> = more
                .iter()
                .enumerate()
                .filter(|&(i, p)| sharded.plan().steer(i, p) == s)
                .map(|(i, _)| i)
                .collect();
            for (i, p) in idxs.into_iter().zip(part.iter()) {
                flat.push((i, p.clone()));
            }
        }
        flat.sort_by_key(|(i, _)| *i);
        // Timestamps differ (the warm serial switch's clock kept
        // running), so compare the algorithm's own fields.
        for (i, p) in flat {
            assert_eq!(
                p.get("c"),
                serial_more[i].get("c"),
                "packet {i} diverged after warm start"
            );
        }
        assert_eq!(
            sharded.export_merged_ingress_state().unwrap(),
            serial.export_ingress_state()
        );
    }

    #[test]
    fn sharded_for_each_streams_bit_identical_to_collect() {
        let ingress = array_counter("count", "counts", 64);
        let egress = passthrough("out");
        let trace = flow_trace(500);
        let cfg = ShardConfig::new(4).with_batch(32);

        let mut a = ShardedSwitch::new_slot(&ingress, &egress, cfg.clone()).unwrap();
        let collected = a.run(&trace).collect().unwrap();

        let mut b = ShardedSwitch::new_slot(&ingress, &egress, cfg).unwrap();
        let mut streamed = Vec::new();
        let stats = b.run(&trace).for_each(|p| streamed.push(p)).unwrap();
        assert_eq!(streamed, collected);
        assert_eq!(stats.offered, 500);
        assert_eq!(stats.transmitted, collected.len() as u64);
        assert_eq!(
            a.export_merged_ingress_state().unwrap(),
            b.export_merged_ingress_state().unwrap()
        );
    }

    #[test]
    fn sharded_source_error_mid_stream_closes_the_books() {
        use crate::stream::{FailAfter, GenSource};

        let ingress = array_counter("count", "counts", 64);
        let egress = passthrough("out");
        let cfg = ShardConfig::new(4).with_batch(16);
        let mut sw = ShardedSwitch::new_slot(&ingress, &egress, cfg).unwrap();
        let src = FailAfter::new(
            GenSource::new(|i| Some(Packet::new().with("flow", (i % 23) as i32))),
            100,
            "link flap",
        );
        let err = sw.run(src).collect().unwrap_err();
        let SwitchError::Fault(report) = err else {
            panic!("expected a fault report");
        };
        let fault = report.source.as_ref().expect("source fault recorded");
        assert_eq!(fault.at, 100);
        assert!(report.failures.is_empty(), "no shard failed");
        assert!(report.accounting.conserved(), "{}", report.accounting);
        assert_eq!(report.accounting.offered, 100);
        assert_eq!(report.accounting.lost_in_fault, 0);
        assert_eq!(report.merged.len(), report.accounting.transmitted as usize);
        assert!(report
            .salvage
            .iter()
            .all(|s| !s.failed && s.state.is_some()));
        // The switch stays usable after the fault.
        let out = sw.run(&flow_trace(50)).collect().unwrap();
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn partitioned_source_error_salvages_every_shard() {
        use crate::stream::{FailAfter, GenSource};

        let ingress = array_counter("count", "counts", 64);
        let egress = passthrough("out");
        let mut sw = ShardedSwitch::new_slot(&ingress, &egress, ShardConfig::new(2)).unwrap();
        let src = FailAfter::new(
            GenSource::new(|i| Some(Packet::new().with("flow", (i % 23) as i32))),
            40,
            "disk error",
        );
        let err = sw.run(src).partitioned().unwrap_err();
        let SwitchError::Fault(report) = err else {
            panic!("expected a fault report");
        };
        assert_eq!(report.source.as_ref().unwrap().at, 40);
        assert_eq!(report.salvage.len(), 2);
        assert!(report
            .salvage
            .iter()
            .all(|s| !s.failed && s.state.is_some()));
        assert_eq!(report.salvage.iter().map(|s| s.offered).sum::<u64>(), 40);
        assert_eq!(report.accounting.offered, 40);
        assert!(report.accounting.conserved(), "{}", report.accounting);
    }

    #[test]
    fn explicit_field_steering_declines_merged_state() {
        let ingress = array_counter("count", "counts", 64);
        let mut sharded = ShardedSwitch::new_slot(
            &ingress,
            &passthrough("out"),
            ShardConfig::new(2).with_steer(SteerMode::Fields(vec!["flow".into()])),
        )
        .unwrap();
        sharded.run(&flow_trace(50)).collect().unwrap();
        assert!(matches!(
            sharded.export_merged_ingress_state(),
            Err(SwitchError::StatePartition(_))
        ));
        assert_eq!(sharded.export_shard_states().len(), 2);
    }
}
