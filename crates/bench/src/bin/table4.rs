//! Experiment E2 — regenerate **Table 4**: for every data-plane algorithm,
//! the least expressive atom, pipeline shape, and Domino/P4 LOC, next to
//! the paper's values. `--with-lut` appends the X1 CoDel row compiled for
//! the look-up-table-extended target.

use bench::{evaluate_algorithm, kind_cell, render_table};

fn main() {
    let with_lut = std::env::args().any(|a| a == "--with-lut");
    println!("Table 4 — data-plane algorithms (measured vs paper)\n");
    let mut rows = Vec::new();
    for algo in &algorithms::TABLE4 {
        let r = evaluate_algorithm(algo, false);
        rows.push(vec![
            r.name.to_string(),
            kind_cell(r.least_atom),
            kind_cell(algo.paper.least_atom),
            format!("{}, {}", r.stages, r.max_atoms_per_stage),
            format!("{}, {}", algo.paper.stages, algo.paper.max_atoms_per_stage),
            algo.paper.pipeline.to_string(),
            format!("{}", r.domino_loc),
            format!("{}", algo.paper.domino_loc),
            r.p4_loc
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into()),
            format!("{}", algo.paper.p4_loc),
        ]);
    }
    if with_lut {
        let r = evaluate_algorithm(&algorithms::CODEL_LUT, true);
        rows.push(vec![
            "codel_lut (X1)".to_string(),
            kind_cell(r.least_atom),
            "n/a".into(),
            format!("{}, {}", r.stages, r.max_atoms_per_stage),
            "n/a".into(),
            "Egress".into(),
            format!("{}", r.domino_loc),
            "n/a".into(),
            r.p4_loc
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into()),
            "n/a".into(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Algorithm",
                "Least atom",
                "(paper)",
                "Stages, atoms",
                "(paper)",
                "Pipeline",
                "Dom LOC",
                "(paper)",
                "P4 LOC",
                "(paper)",
            ],
            &rows
        )
    );
    for algo in &algorithms::TABLE4 {
        let r = evaluate_algorithm(algo, false);
        if let Some(reason) = r.reject_reason {
            println!("{}: rejected on every target — {}", r.name, reason);
        }
    }
}
