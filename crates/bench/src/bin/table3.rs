//! Experiment E1 — regenerate **Table 3**: atom areas in a 32 nm
//! standard-cell library (computed from the circuit model, next to the
//! paper's published values).

use banzai::AtomKind;
use bench::render_table;
use hardware_model::{paper_area, stateful_circuit, stateless_circuit, PAPER_STATELESS_AREA};

fn main() {
    println!("Table 3 — atom areas (um^2), 32 nm library, 1 GHz\n");
    let mut rows = Vec::new();
    let stateless = stateless_circuit();
    rows.push(vec![
        "Stateless".to_string(),
        format!("{:.0}", stateless.area()),
        format!("{PAPER_STATELESS_AREA:.0}"),
        format!(
            "{:+.1}%",
            100.0 * (stateless.area() - PAPER_STATELESS_AREA) / PAPER_STATELESS_AREA
        ),
    ]);
    for kind in AtomKind::ALL {
        let circuit = stateful_circuit(kind);
        let got = circuit.area();
        let want = paper_area(kind);
        rows.push(vec![
            kind.paper_name().to_string(),
            format!("{got:.0}"),
            format!("{want:.0}"),
            format!("{:+.1}%", 100.0 * (got - want) / want),
        ]);
    }
    println!(
        "{}",
        render_table(&["Atom", "Model area", "Paper area", "Residual"], &rows)
    );
    println!("All atoms meet timing at 1 GHz (delay < 1000 ps): see table6.");
}
