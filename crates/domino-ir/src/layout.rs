//! Compile-time field layout: interned fields, flat packets, flat state.
//!
//! The map-based [`Packet`] is the *semantic reference*: a
//! `BTreeMap` from field name to value, convenient and order-deterministic
//! but string-keyed on every access. Real switch pipelines resolve header
//! layouts at compile time — a PHV container is a fixed offset, not a
//! dictionary lookup. This module provides that layout-resolution step:
//!
//! * [`FieldTable`] — an interner assigning every packet field a dense
//!   [`FieldId`] (its PHV slot), keeping reverse names for diagnostics;
//! * [`FlatPacket`] — a fixed `i32` slab keyed by [`FieldId`], with a
//!   presence bitmask replicating the map packet's has/absent semantics;
//! * [`StateLayout`] / [`FlatState`] — every state variable resolved to a
//!   base offset into one flat register file (scalars take one slot,
//!   arrays `size` slots).
//!
//! The slot-compiled execution engine in `banzai` lowers atom pipelines
//! onto these layouts once, then executes packets with pure integer
//! indexing — no per-packet string hashing or tree walks. Differential
//! tests assert the fast path is bit-identical to the map path.

use crate::packet::Packet;
use crate::state::StateStore;
use domino_ast::{StateKind, StateVar};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A dense identifier for an interned packet field — the field's slot in a
/// [`FlatPacket`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldId(u32);

impl FieldId {
    /// The slot index this id addresses.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw slot number.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot#{}", self.0)
    }
}

/// An interner mapping packet field names to dense [`FieldId`]s.
///
/// Slots are assigned in first-intern order, so a table built by walking a
/// pipeline deterministically is itself deterministic. The table keeps the
/// reverse mapping (`id → name`) so fast-path diagnostics can still name
/// the field — matching [`Packet::expect`]'s contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FieldTable {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl FieldTable {
    /// An empty table.
    pub fn new() -> Self {
        FieldTable::default()
    }

    /// Interns `name`, returning its (new or existing) [`FieldId`].
    pub fn intern(&mut self, name: &str) -> FieldId {
        if let Some(&id) = self.index.get(name) {
            return FieldId(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        FieldId(id)
    }

    /// Looks up an already-interned field.
    pub fn lookup(&self, name: &str) -> Option<FieldId> {
        self.index.get(name).copied().map(FieldId)
    }

    /// The name behind a [`FieldId`] (reverse mapping, for diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this table.
    pub fn name(&self, id: FieldId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned fields (== the slot count of a [`FlatPacket`]).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no field has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (FieldId(i as u32), n.as_str()))
    }
}

impl fmt::Display for FieldTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, name) in self.iter() {
            writeln!(f, "{id} = pkt.{name}")?;
        }
        Ok(())
    }
}

/// Number of 64-bit words needed for a presence bitmask over `slots` slots.
fn mask_words(slots: usize) -> usize {
    slots.div_ceil(64)
}

/// A packet laid out flat: one `i32` per interned field plus a presence
/// bitmask.
///
/// Invariant: an absent slot always holds 0, so the hot path may read raw
/// slot values directly — `get_or_zero` semantics for free. Presence only
/// matters at the edges ([`FlatPacket::has`], [`FlatPacket::expect`],
/// [`FlatPacket::to_packet`]), exactly like uninitialized PHV containers in
/// a real pipeline reading as zero.
#[derive(Debug, Clone)]
pub struct FlatPacket {
    table: Arc<FieldTable>,
    vals: Box<[i32]>,
    present: Box<[u64]>,
}

impl FlatPacket {
    /// An empty packet over `table`'s layout (all slots absent).
    pub fn new(table: Arc<FieldTable>) -> Self {
        let slots = table.len();
        FlatPacket {
            table,
            vals: vec![0; slots].into_boxed_slice(),
            present: vec![0; mask_words(slots)].into_boxed_slice(),
        }
    }

    /// Converts a map packet onto `table`'s layout.
    ///
    /// Fields of `pkt` not present in the table are *not* representable and
    /// are skipped; callers that must preserve pass-through fields keep the
    /// original packet and merge written slots back (see the slot engine).
    pub fn from_packet(pkt: &Packet, table: &Arc<FieldTable>) -> Self {
        let mut flat = FlatPacket::new(Arc::clone(table));
        for (name, value) in pkt.iter() {
            if let Some(id) = table.lookup(name) {
                flat.set(id, value);
            }
        }
        flat
    }

    /// The layout this packet is keyed by.
    pub fn table(&self) -> &Arc<FieldTable> {
        &self.table
    }

    /// Reads a slot, `None` if no write has marked it present.
    pub fn get(&self, id: FieldId) -> Option<i32> {
        if self.has(id) {
            Some(self.vals[id.index()])
        } else {
            None
        }
    }

    /// Reads a slot, absent slots read as 0 (the hot-path read).
    #[inline]
    pub fn get_or_zero(&self, id: FieldId) -> i32 {
        self.vals[id.index()]
    }

    /// Reads a slot that the execution model guarantees was written.
    ///
    /// # Panics
    ///
    /// Panics with the *field name* (via the table's reverse mapping), not
    /// a bare slot index — same contract as [`Packet::expect`]: a missing
    /// field is a compiler bug and the diagnostic must name it.
    pub fn expect(&self, id: FieldId) -> i32 {
        match self.get(id) {
            Some(v) => v,
            None => panic!(
                "internal error: packet field `{}` ({id}) read before any write; \
                 fields present: [{}]",
                self.table.name(id),
                self.field_names().collect::<Vec<_>>().join(", ")
            ),
        }
    }

    /// True if the slot has been written.
    #[inline]
    pub fn has(&self, id: FieldId) -> bool {
        let i = id.index();
        self.present[i / 64] >> (i % 64) & 1 == 1
    }

    /// Writes a slot and marks it present.
    #[inline]
    pub fn set(&mut self, id: FieldId, value: i32) {
        let i = id.index();
        self.vals[i] = value;
        self.present[i / 64] |= 1 << (i % 64);
    }

    /// Raw value slab (hot-path accessor for the slot engine). Writes via
    /// this slice do *not* update presence; the engine restores the
    /// invariant by OR-ing its static written-slot mask afterwards.
    #[inline]
    pub fn slots_mut(&mut self) -> &mut [i32] {
        &mut self.vals
    }

    /// Raw value slab (read side).
    #[inline]
    pub fn slots(&self) -> &[i32] {
        &self.vals
    }

    /// OR-s a precomputed presence mask into this packet (the engine's
    /// static set of written slots; statements are straight-line, so the
    /// written set per pipeline is a compile-time constant).
    #[inline]
    pub fn mark_present(&mut self, mask: &[u64]) {
        debug_assert_eq!(mask.len(), self.present.len());
        for (word, m) in self.present.iter_mut().zip(mask) {
            *word |= m;
        }
    }

    /// Names of present fields, in slot order.
    pub fn field_names(&self) -> impl Iterator<Item = &str> {
        self.table
            .iter()
            .filter(|(id, _)| self.has(*id))
            .map(|(_, n)| n)
    }

    /// Converts back to a map packet (present fields only).
    pub fn to_packet(&self) -> Packet {
        self.table
            .iter()
            .filter(|(id, _)| self.has(*id))
            .map(|(id, n)| (n.to_string(), self.vals[id.index()]))
            .collect()
    }
}

impl PartialEq for FlatPacket {
    /// Two flat packets are equal when they agree on layout, presence, and
    /// every present value (tables compare by content, so packets from two
    /// identical lowerings compare equal).
    fn eq(&self, other: &Self) -> bool {
        (Arc::ptr_eq(&self.table, &other.table) || self.table == other.table)
            && self.present == other.present
            && self.vals == other.vals
    }
}

impl Eq for FlatPacket {}

/// Where one state variable lives in the flat register file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSlot {
    /// The variable's name (kept for diagnostics and state export).
    pub name: String,
    /// First slot of the variable in the register file.
    pub base: u32,
    /// Number of slots (1 for a scalar, the array size otherwise).
    pub len: u32,
    /// True if the variable is a register array.
    pub is_array: bool,
    /// Initial value of every slot.
    pub init: i32,
}

/// The compile-time layout of all state variables: each resolved to a base
/// offset into one flat `i32` register file, in declaration order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateLayout {
    entries: Vec<StateSlot>,
    total: u32,
}

impl StateLayout {
    /// Builds the layout from checked state declarations.
    pub fn from_decls(decls: &[StateVar]) -> Self {
        let mut entries = Vec::with_capacity(decls.len());
        let mut total = 0u32;
        for d in decls {
            let (len, is_array) = match d.kind {
                StateKind::Scalar => (1, false),
                StateKind::Array { size } => (size as u32, true),
            };
            entries.push(StateSlot {
                name: d.name.clone(),
                base: total,
                len,
                is_array,
                init: d.init,
            });
            total += len;
        }
        StateLayout { entries, total }
    }

    /// The layout entry for a variable, if declared.
    pub fn slot(&self, name: &str) -> Option<&StateSlot> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Total register-file slots.
    pub fn total_slots(&self) -> usize {
        self.total as usize
    }

    /// All entries in declaration (base-offset) order.
    pub fn entries(&self) -> &[StateSlot] {
        &self.entries
    }
}

impl fmt::Display for StateLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            if e.is_array {
                writeln!(
                    f,
                    "state[{}..{}] = {}[{}]",
                    e.base,
                    e.base + e.len,
                    e.name,
                    e.len
                )?;
            } else {
                writeln!(f, "state[{}] = {}", e.base, e.name)?;
            }
        }
        Ok(())
    }
}

/// All state variables of a program as one flat register file.
///
/// Array indexing wraps modulo the array size with the same `rem_euclid`
/// rule as [`StateStore`] — the two representations are observably
/// identical, which [`FlatState::export`] lets tests assert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatState {
    layout: StateLayout,
    slots: Box<[i32]>,
}

impl FlatState {
    /// Initializes the register file from a layout (every slot of a
    /// variable starts at the variable's initializer).
    pub fn new(layout: StateLayout) -> Self {
        let mut slots = vec![0; layout.total_slots()].into_boxed_slice();
        for e in layout.entries() {
            for s in &mut slots[e.base as usize..(e.base + e.len) as usize] {
                *s = e.init;
            }
        }
        FlatState { layout, slots }
    }

    /// The layout this register file was built from.
    pub fn layout(&self) -> &StateLayout {
        &self.layout
    }

    /// Reads the scalar at `base`.
    #[inline]
    pub fn read(&self, base: u32) -> i32 {
        self.slots[base as usize]
    }

    /// Writes the scalar at `base`.
    #[inline]
    pub fn write(&mut self, base: u32, value: i32) {
        self.slots[base as usize] = value;
    }

    /// Reads an array element (index reduced modulo `len`, like a hardware
    /// address decoder — identical to [`StateStore`]'s rule).
    #[inline]
    pub fn read_array(&self, base: u32, len: u32, index: i32) -> i32 {
        self.slots[base as usize + Self::wrap(index, len)]
    }

    /// Writes an array element (index reduced modulo `len`).
    #[inline]
    pub fn write_array(&mut self, base: u32, len: u32, index: i32, value: i32) {
        self.slots[base as usize + Self::wrap(index, len)] = value;
    }

    #[inline]
    fn wrap(index: i32, len: u32) -> usize {
        (index as i64).rem_euclid(len as i64) as usize
    }

    /// Exports the register file as a map-based [`StateStore`] for
    /// comparison against the reference path.
    pub fn export(&self) -> StateStore {
        let mut store = StateStore::new();
        for e in self.layout.entries() {
            let window = &self.slots[e.base as usize..(e.base + e.len) as usize];
            if e.is_array {
                store.insert_array(&e.name, e.len as usize, 0);
                // insert_array fills with one init value; overwrite with
                // the live contents.
                for (i, v) in window.iter().enumerate() {
                    store.write_array(&e.name, i as i32, *v);
                }
            } else {
                store.insert_scalar(&e.name, window[0]);
            }
        }
        store
    }
}

impl fmt::Display for FlatState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.export())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_abc() -> Arc<FieldTable> {
        let mut t = FieldTable::new();
        t.intern("a");
        t.intern("b");
        t.intern("c");
        Arc::new(t)
    }

    #[test]
    fn interning_is_dense_and_idempotent() {
        let mut t = FieldTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(t.intern("a"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), "a");
        assert_eq!(t.lookup("b"), Some(b));
        assert_eq!(t.lookup("ghost"), None);
    }

    #[test]
    fn flat_packet_roundtrips_through_map_packet() {
        let table = table_abc();
        let pkt = Packet::new().with("a", 5).with("c", -2);
        let flat = FlatPacket::from_packet(&pkt, &table);
        assert_eq!(flat.get(table.lookup("a").unwrap()), Some(5));
        assert_eq!(flat.get(table.lookup("b").unwrap()), None);
        assert_eq!(flat.get_or_zero(table.lookup("b").unwrap()), 0);
        assert_eq!(flat.to_packet(), pkt);
    }

    #[test]
    fn absent_slots_read_zero_until_masked_present() {
        let table = table_abc();
        let mut flat = FlatPacket::new(Arc::clone(&table));
        let b = table.lookup("b").unwrap();
        flat.slots_mut()[b.index()] = 7; // raw engine write, no presence
        assert!(!flat.has(b));
        assert_eq!(flat.get_or_zero(b), 7);
        let mut mask = vec![0u64; 1];
        mask[0] |= 1 << b.index();
        flat.mark_present(&mask);
        assert!(flat.has(b));
        assert_eq!(flat.to_packet().get("b"), Some(7));
    }

    #[test]
    #[should_panic(expected = "packet field `b` (slot#1) read before any write")]
    fn expect_panics_with_field_name_not_bare_index() {
        let table = table_abc();
        let mut flat = FlatPacket::new(Arc::clone(&table));
        flat.set(table.lookup("a").unwrap(), 1);
        flat.expect(table.lookup("b").unwrap());
    }

    #[test]
    fn state_layout_assigns_contiguous_bases() {
        let decls = vec![
            StateVar {
                name: "c".into(),
                kind: StateKind::Scalar,
                init: 7,
            },
            StateVar {
                name: "arr".into(),
                kind: StateKind::Array { size: 4 },
                init: -1,
            },
            StateVar {
                name: "d".into(),
                kind: StateKind::Scalar,
                init: 0,
            },
        ];
        let layout = StateLayout::from_decls(&decls);
        assert_eq!(layout.total_slots(), 6);
        assert_eq!(layout.slot("c").unwrap().base, 0);
        assert_eq!(layout.slot("arr").unwrap().base, 1);
        assert_eq!(layout.slot("arr").unwrap().len, 4);
        assert_eq!(layout.slot("d").unwrap().base, 5);
        assert!(layout.slot("ghost").is_none());
    }

    #[test]
    fn flat_state_matches_state_store_semantics() {
        let decls = vec![
            StateVar {
                name: "c".into(),
                kind: StateKind::Scalar,
                init: 7,
            },
            StateVar {
                name: "arr".into(),
                kind: StateKind::Array { size: 4 },
                init: -1,
            },
        ];
        let mut flat = FlatState::new(StateLayout::from_decls(&decls));
        let mut store = StateStore::from_decls(&decls);

        let arr = flat.layout().slot("arr").unwrap().clone();
        let c = flat.layout().slot("c").unwrap().clone();
        assert_eq!(flat.read(c.base), 7);
        flat.write(c.base, 42);
        store.write_scalar("c", 42);
        // Wrapping behaviour must match rem_euclid on both sides.
        for idx in [0, 2, 6, -1] {
            flat.write_array(arr.base, arr.len, idx, 10 + idx);
            store.write_array("arr", idx, 10 + idx);
        }
        assert_eq!(flat.export(), store);
    }

    #[test]
    fn flat_packet_equality_compares_layout_and_contents() {
        let table = table_abc();
        let p1 = FlatPacket::from_packet(&Packet::new().with("a", 1), &table);
        let p2 = FlatPacket::from_packet(&Packet::new().with("a", 1), &table);
        let p3 = FlatPacket::from_packet(&Packet::new().with("a", 2), &table);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        // Same content, different (but equal) table instances.
        let other = Arc::new((*table).clone());
        let p4 = FlatPacket::from_packet(&Packet::new().with("a", 1), &other);
        assert_eq!(p1, p4);
    }
}
