//! Chaos suite: supervised sharded execution under injected faults.
//!
//! The contract under test (see `banzai::shard`'s failure model and
//! `banzai::fault`):
//!
//! * a worker panic at **any** packet index on **any** shard never
//!   deadlocks or aborts the process — the run returns a typed
//!   [`SwitchError::Fault`] naming the shard, the failing packet's global
//!   index, and the panic payload;
//! * every surviving shard's salvage is **bit-identical to the serial
//!   switch** restricted to that shard's flows (outputs and state);
//! * packet conservation holds exactly on every faulted run:
//!   `offered == transmitted + dropped + lost_in_fault`;
//! * a stalled worker trips the watchdog instead of hanging the caller;
//! * `Backpressure::Shed` sheds under overload, counted, and conserves;
//! * the switch is rebuilt after a fault and remains usable.

use banzai::fault::INJECTED_PANIC_MARKER;
use banzai::{
    AtomKind, AtomPipeline, Backpressure, FaultCause, FaultPlan, FaultSpec, FaultyEngine,
    PipelineEngine, ShardConfig, ShardedSwitch, SlotMachine, Switch, SwitchError, Target,
};
use domino_ir::Packet;

const CAPACITY: usize = 512;

/// A per-flow counter — partitionable, so it genuinely fans out.
const COUNTER: &str = "struct P { int flow; int c; };\nint counts[64] = {0};\n\
                       void count(struct P pkt) {\n\
                         counts[pkt.flow] = counts[pkt.flow] + 1;\n\
                         pkt.c = counts[pkt.flow];\n\
                       }";

fn counter_pipelines() -> (AtomPipeline, AtomPipeline) {
    let ingress = domino_compiler::compile(COUNTER, &Target::banzai(AtomKind::Raw)).unwrap();
    (ingress, AtomPipeline::passthrough("egress"))
}

fn trace(len: usize, flows: i32) -> Vec<Packet> {
    (0..len)
        .map(|i| Packet::new().with("flow", i as i32 % flows).with("c", 0))
        .collect()
}

/// Builds a sharded switch whose shards are armed per `faults` — the
/// constructor-driven injection path (`new_with` + `FaultyEngine`).
fn armed(
    ingress: &AtomPipeline,
    egress: &AtomPipeline,
    cfg: ShardConfig,
    faults: &FaultPlan,
) -> ShardedSwitch<FaultyEngine<SlotMachine>> {
    ShardedSwitch::new_with(ingress, egress, cfg, |s, ing, eg, cap| {
        let ingress_eng = FaultyEngine::with_faults(ing, faults.faults_for(s).to_vec())?;
        let egress_eng = <FaultyEngine<SlotMachine>>::build(eg)?;
        Ok(Switch::from_engines(ingress_eng, egress_eng, cap))
    })
    .unwrap()
}

/// Unwraps a run result into its fault report, asserting it faulted.
fn expect_fault<T>(res: Result<T, SwitchError>, ctx: &str) -> banzai::FaultReport {
    match res {
        Err(SwitchError::Fault(report)) => *report,
        Err(other) => panic!("{ctx}: wrong error variant: {other}"),
        Ok(_) => panic!("{ctx}: run succeeded despite armed fault"),
    }
}

/// Kill the worker at every shard × a spread of packet indices: the run
/// must return a typed error naming the shard, cause, and exact global
/// packet index; survivors must match serial bit-for-bit; the books must
/// balance.
#[test]
fn kill_any_shard_at_any_packet_is_isolated_and_accounted() {
    const SHARDS: usize = 4;
    const BATCH: usize = 8;
    let (ingress, egress) = counter_pipelines();
    let trace = trace(480, 48);

    // Serial reference (the ground truth survivors must match).
    let mut serial = Switch::new_slot(&ingress, &egress, CAPACITY).unwrap();
    let serial_out = serial
        .run(&trace)
        .collect()
        .expect("slice-backed sources cannot fail mid-stream");

    // Steering assignment, from an unarmed twin (the plan is pure).
    let probe = ShardedSwitch::new_slot(&ingress, &egress, ShardConfig::new(SHARDS)).unwrap();
    assert_eq!(probe.plan().effective(), SHARDS, "{}", probe.plan());
    let assignment: Vec<usize> = trace
        .iter()
        .enumerate()
        .map(|(i, p)| probe.plan().steer(i, p))
        .collect();
    let positions = |s: usize| -> Vec<u64> {
        assignment
            .iter()
            .enumerate()
            .filter(|&(_, &sh)| sh == s)
            .map(|(i, _)| i as u64)
            .collect()
    };
    for s in 0..SHARDS {
        assert!(positions(s).len() > 20, "shard {s} starved by steering");
    }

    for victim in 0..SHARDS {
        let victim_positions = positions(victim);
        let last = victim_positions.len() as u64 - 1;
        for local_k in [0, 1, 17, last] {
            let ctx = format!("victim {victim}, local packet {local_k}");
            let cfg = ShardConfig::new(SHARDS).with_batch(BATCH);
            let faults = FaultPlan::kill(SHARDS, victim, local_k);
            let mut sw = armed(&ingress, &egress, cfg, &faults);
            let report = expect_fault(sw.run(&trace).collect(), &ctx);

            // Typed error: shard, global packet index, payload marker.
            assert_eq!(report.failures.len(), 1, "{ctx}");
            let failure = &report.failures[0];
            assert_eq!(failure.shard, victim, "{ctx}");
            assert_eq!(
                failure.packet,
                Some(victim_positions[local_k as usize]),
                "{ctx}: wrong failing packet"
            );
            assert!(
                matches!(&failure.cause, FaultCause::Panic(p) if p.contains(INJECTED_PANIC_MARKER)),
                "{ctx}: {:?}",
                failure.cause
            );

            // Survivors: complete output + state, bit-identical to the
            // serial switch restricted to their flows.
            let mut survivors = report.survivors();
            survivors.sort_unstable();
            let expected_survivors: Vec<usize> = (0..SHARDS).filter(|&s| s != victim).collect();
            assert_eq!(survivors, expected_survivors, "{ctx}");
            for s in expected_survivors {
                let salvage = report.shard(s).unwrap();
                let expected: Vec<&Packet> = assignment
                    .iter()
                    .enumerate()
                    .filter(|&(_, &sh)| sh == s)
                    .map(|(i, _)| &serial_out[i])
                    .collect();
                let got: Vec<&Packet> = salvage.output.iter().collect();
                assert_eq!(
                    got, expected,
                    "{ctx}: shard {s} output diverged from serial"
                );
                assert_eq!(salvage.offered, expected.len() as u64, "{ctx}");
                assert_eq!(salvage.lost(), 0, "{ctx}: survivor lost packets");

                // State: equal to a serial run over exactly this shard's
                // packet subsequence.
                let sub: Vec<Packet> = assignment
                    .iter()
                    .enumerate()
                    .filter(|&(_, &sh)| sh == s)
                    .map(|(i, _)| trace[i].clone())
                    .collect();
                let mut twin = Switch::new_slot(&ingress, &egress, CAPACITY).unwrap();
                twin.run(&sub)
                    .for_each(|_| {})
                    .expect("slice-backed sources cannot fail mid-stream");
                let (salvaged_ingress, salvaged_egress) = salvage
                    .state
                    .as_ref()
                    .unwrap_or_else(|| panic!("{ctx}: no state"));
                assert_eq!(
                    salvaged_ingress,
                    &twin.export_ingress_state(),
                    "{ctx}: shard {s} ingress state diverged from serial"
                );
                assert_eq!(salvaged_egress, &twin.export_egress_state(), "{ctx}");
            }

            // Victim: the completed-batch prefix, nothing more.
            let victim_salvage = report.shard(victim).unwrap();
            assert!(victim_salvage.failed, "{ctx}");
            assert!(
                victim_salvage.state.is_none(),
                "{ctx}: faulted state reported"
            );
            let whole_batches = (local_k as usize / BATCH) * BATCH;
            assert_eq!(victim_salvage.output.len(), whole_batches, "{ctx}");
            assert_eq!(
                victim_salvage.lost(),
                victim_positions.len() as u64 - whole_batches as u64,
                "{ctx}"
            );

            // The books balance exactly.
            assert_eq!(report.accounting.offered, trace.len() as u64, "{ctx}");
            assert!(
                report.accounting.conserved(),
                "{ctx}: {}",
                report.accounting
            );
            assert_eq!(report.accounting.dropped, 0, "{ctx}");
        }
    }
}

/// The single-shard configuration goes through the same supervised path:
/// a fault still salvages and accounts instead of crashing.
#[test]
fn single_shard_fault_is_supervised_too() {
    let (ingress, egress) = counter_pipelines();
    let trace = trace(60, 4);
    let cfg = ShardConfig::new(1).with_batch(16);
    let mut sw = armed(&ingress, &egress, cfg, &FaultPlan::kill(1, 0, 21));
    let report = expect_fault(sw.run(&trace).collect(), "single shard");

    assert_eq!(report.failures[0].shard, 0);
    assert_eq!(report.failures[0].packet, Some(21));
    assert!(report.survivors().is_empty());
    assert!(report.merged.is_empty(), "no survivors, nothing merged");
    assert_eq!(report.shard(0).unwrap().output.len(), 16);
    assert!(report.accounting.conserved(), "{}", report.accounting);
}

/// A worker wedged past the watchdog is declared stalled and abandoned —
/// the caller gets a typed `Stall` error promptly instead of hanging.
#[test]
fn stalled_worker_trips_watchdog_without_hanging() {
    let (ingress, egress) = counter_pipelines();
    let trace = trace(200, 16);
    let probe = ShardedSwitch::new_slot(&ingress, &egress, ShardConfig::new(4)).unwrap();
    let victim = probe.plan().steer(0, &trace[0]);

    let mut faults = FaultPlan::none(4);
    faults.push(victim, FaultSpec::stall_at(0, 2_000));
    let cfg = ShardConfig::new(4)
        .with_batch(8)
        .with_ring(1)
        .with_watchdog_ms(100)
        .with_backpressure(Backpressure::Block);
    let mut sw = armed(&ingress, &egress, cfg, &faults);

    let started = std::time::Instant::now();
    let report = expect_fault(sw.run(&trace).collect(), "stall");
    assert!(
        started.elapsed() < std::time::Duration::from_millis(1_500),
        "caller waited on a wedged worker: {:?}",
        started.elapsed()
    );
    let failure = report
        .failures
        .iter()
        .find(|f| f.shard == victim)
        .expect("victim must be reported");
    assert!(
        matches!(failure.cause, FaultCause::Stall { watchdog_ms: 100 }),
        "{:?}",
        failure.cause
    );
    assert_eq!(failure.packet, None, "a stalled worker never says where");
    assert!(report.accounting.conserved(), "{}", report.accounting);
    assert_eq!(
        report.shard(victim).unwrap().lost(),
        report.shard(victim).unwrap().offered
    );
}

/// Under `Backpressure::Shed`, a slow (but not dead) worker costs
/// counted sheds, not a fault: the run succeeds and every packet is
/// either transmitted or in the backpressure counter.
#[test]
fn shed_policy_counts_overload_and_conserves() {
    let (ingress, egress) = counter_pipelines();
    let trace = trace(400, 16);
    let probe = ShardedSwitch::new_slot(&ingress, &egress, ShardConfig::new(4)).unwrap();
    let victim = probe.plan().steer(0, &trace[0]);

    // One slow first packet: the feeder outruns the worker and must shed.
    let mut faults = FaultPlan::none(4);
    faults.push(victim, FaultSpec::stall_at(0, 300));
    let cfg = ShardConfig::new(4)
        .with_batch(4)
        .with_ring(1)
        .with_watchdog_ms(5_000)
        .with_backpressure(Backpressure::Shed);
    let mut sw = armed(&ingress, &egress, cfg, &faults);
    assert_eq!(sw.backpressure(), Backpressure::Shed);

    let out = sw.run(&trace).collect().expect("shedding is not a fault");
    let shed = sw.drop_counters().backpressure();
    assert!(
        shed > 0,
        "feeder never shed despite a 300ms stall and a 1-batch ring"
    );
    assert_eq!(
        out.len() as u64 + sw.drops(),
        trace.len() as u64,
        "shed run must conserve: {} out + {} dropped != {} offered",
        out.len(),
        sw.drops(),
        trace.len()
    );
    assert_eq!(sw.transmitted(), out.len() as u64);
}

/// Silent data corruption (a bit flip) is *not* a fault: the run
/// completes and conserves, but the output diverges from the clean run —
/// exactly what a supervisor can and cannot see.
#[test]
fn bit_flip_diverges_output_but_conserves() {
    let (ingress, egress) = counter_pipelines();
    let trace = trace(200, 8);
    let cfg = ShardConfig::new(4).with_batch(8);

    let mut clean = armed(&ingress, &egress, cfg.clone(), &FaultPlan::none(4));
    let clean_out = clean.run(&trace).collect().unwrap();

    let victim = clean.plan().steer(0, &trace[0]);
    let mut faults = FaultPlan::none(4);
    // Flip bit 2 of the flow id: flows stay in 0..12, inside the table.
    faults.push(victim, FaultSpec::bit_flip_at(3, "flow", 2));
    let mut flipped = armed(&ingress, &egress, cfg, &faults);
    let flipped_out = flipped.run(&trace).collect().unwrap();

    assert_eq!(flipped_out.len(), clean_out.len());
    assert_ne!(flipped_out, clean_out, "corruption must be observable");
    assert_eq!(flipped.transmitted(), trace.len() as u64);
    assert_eq!(flipped.drops(), 0);
}

/// Killing the worker on its first packet leaves the feeder talking to a
/// dead ring for the rest of the trace: the feed path must report the
/// *panic*, not die on the send (`shard worker hung up`).
#[test]
fn feeding_a_dead_worker_reports_the_panic_not_the_send() {
    let (ingress, egress) = counter_pipelines();
    let trace = trace(300, 16);
    let probe = ShardedSwitch::new_slot(&ingress, &egress, ShardConfig::new(4)).unwrap();
    let victim = probe.plan().steer(0, &trace[0]);

    // batch 1 + ring 1: the feeder is guaranteed to hit the closed
    // channel long after the worker died on packet 0.
    let cfg = ShardConfig::new(4).with_batch(1).with_ring(1);
    let mut sw = armed(&ingress, &egress, cfg, &FaultPlan::kill(4, victim, 0));
    let report = expect_fault(sw.run(&trace).collect(), "dead worker");

    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].shard, victim);
    assert!(
        matches!(&report.failures[0].cause, FaultCause::Panic(p) if p.contains(INJECTED_PANIC_MARKER)),
        "dead-ring sends must not mask the original panic: {:?}",
        report.failures[0].cause
    );
    let salvage = report.shard(victim).unwrap();
    assert!(salvage.output.is_empty());
    assert_eq!(salvage.lost(), salvage.offered);
    assert!(report.accounting.conserved(), "{}", report.accounting);
}

/// After a fault the failed shard is rebuilt with a fresh, fault-free
/// engine: the same switch runs the same trace cleanly, and the
/// cumulative counters keep conserving across the fault boundary.
#[test]
fn switch_is_rebuilt_and_usable_after_a_fault() {
    let (ingress, egress) = counter_pipelines();
    let trace = trace(160, 16);
    let cfg = ShardConfig::new(4).with_batch(8);
    let probe = ShardedSwitch::new_slot(&ingress, &egress, ShardConfig::new(4)).unwrap();
    let victim = probe.plan().steer(0, &trace[0]);

    let mut sw = armed(&ingress, &egress, cfg, &FaultPlan::kill(4, victim, 3));
    let report = expect_fault(sw.run(&trace).collect(), "first run");
    let salvaged_tx = report.accounting.transmitted;

    // Second run: the rebuilt shard carries no fault schedule.
    let out = sw
        .run(&trace)
        .collect()
        .expect("rebuilt switch must run clean");
    assert_eq!(out.len(), trace.len());

    // Cumulative counters: both runs' transmissions are accounted.
    assert_eq!(sw.transmitted(), salvaged_tx + trace.len() as u64);
}

/// Scheduling-path fault coverage: a shard killed mid-trace during a
/// PIFO run ([`ShardedSwitch::run_sched_trace`]) salvages its queue
/// contents **in rank order** — the shard-local PIFO lives outside the
/// per-batch unwind boundary, so the panic loses only the packets from
/// the failing one onward, never the queue — and the report's
/// [`Accounting`](banzai::Accounting) closes the books exactly.
#[test]
fn killed_shard_mid_sched_trace_salvages_pifo_in_rank_order() {
    const SHARDS: usize = 4;
    const LOCAL_K: u64 = 17;
    let (ingress, egress) = counter_pipelines();
    let trace = trace(480, 48);
    // Rank = the flow's running count: dense cross-flow ties, so the
    // rank order the salvage must exhibit is not the arrival order.
    let spec = banzai::SchedSpec::Pifo { rank: "c".into() };

    let probe = ShardedSwitch::new_slot(&ingress, &egress, ShardConfig::new(SHARDS)).unwrap();
    let assignment: Vec<usize> = trace
        .iter()
        .enumerate()
        .map(|(i, p)| probe.plan().steer(i, p))
        .collect();

    for victim in 0..SHARDS {
        let ctx = format!("sched victim {victim}");
        let victim_positions: Vec<u64> = assignment
            .iter()
            .enumerate()
            .filter(|&(_, &sh)| sh == victim)
            .map(|(i, _)| i as u64)
            .collect();
        assert!(victim_positions.len() as u64 > LOCAL_K, "{ctx}: starved");

        let cfg = ShardConfig::new(SHARDS)
            .with_batch(8)
            .with_scheduler(spec.clone());
        let faults = FaultPlan::kill(SHARDS, victim, LOCAL_K);
        let mut sw = armed(&ingress, &egress, cfg, &faults);
        let report = expect_fault(sw.run(&trace).scheduled().collect(), &ctx);

        // Typed failure at the exact global packet index.
        assert_eq!(report.failures.len(), 1, "{ctx}");
        assert_eq!(report.failures[0].shard, victim, "{ctx}");
        assert_eq!(
            report.failures[0].packet,
            Some(victim_positions[LOCAL_K as usize]),
            "{ctx}"
        );

        // The victim's salvage: every packet ingress-processed before
        // the failing one — finer than batch granularity, because the
        // PIFO survives the unwind — popped in rank order.
        let victim_salvage = report.shard(victim).unwrap();
        assert!(victim_salvage.failed, "{ctx}");
        assert_eq!(victim_salvage.output.len(), LOCAL_K as usize, "{ctx}");
        assert_eq!(
            victim_salvage.lost(),
            victim_positions.len() as u64 - LOCAL_K,
            "{ctx}"
        );
        for salvage in &report.salvage {
            let keys: Vec<_> = salvage.output.iter().map(|p| spec.key_of(p)).collect();
            assert!(
                keys.windows(2).all(|w| w[0] <= w[1]),
                "{ctx}: shard {} salvage not in rank order: {keys:?}",
                salvage.shard
            );
            if !salvage.failed {
                assert_eq!(salvage.output.len() as u64, salvage.offered, "{ctx}");
                assert_eq!(salvage.lost(), 0, "{ctx}");
            }
        }

        // The books close exactly: nothing was dropped (capacity 512 >
        // trace), so offered == salvaged + lost-with-the-fault.
        assert_eq!(report.accounting.offered, trace.len() as u64, "{ctx}");
        assert_eq!(report.accounting.dropped, 0, "{ctx}");
        assert_eq!(
            report.accounting.lost_in_fault,
            victim_positions.len() as u64 - LOCAL_K,
            "{ctx}"
        );
        assert!(
            report.accounting.conserved(),
            "{ctx}: {}",
            report.accounting
        );

        // The rebuilt switch schedules cleanly on the next trace.
        let deps = sw
            .run(&trace)
            .scheduled()
            .collect()
            .expect("rebuilt switch must run clean");
        assert_eq!(deps.len(), trace.len(), "{ctx}: rerun lost packets");
    }
}

/// Replica-tier fault coverage: killing a shard of a replicated sketch
/// (heavy_hitters' count-min) loses only that shard's replica. Merging
/// the survivors' `ShardSalvage` snapshots through the replica spec
/// yields a sketch that is bit-exact to replaying the surviving
/// packets, conserves their mass, and still honors the (ε, δ) bound
/// over the surviving sub-trace.
#[test]
fn killed_replica_shard_salvage_merges_into_a_bound_respecting_sketch() {
    const SHARDS: usize = 4;
    const SEED: u64 = 0x000D_0771_2016;
    let a = algorithms::by_name("heavy_hitters").unwrap();
    let ingress = domino_compiler::compile(a.source, &Target::banzai(AtomKind::Raw)).unwrap();
    let egress = AtomPipeline::passthrough("egress");
    let trace = a.trace(600, SEED);

    let probe = ShardedSwitch::new_slot(&ingress, &egress, ShardConfig::new(SHARDS)).unwrap();
    assert_eq!(
        probe.plan().tier(),
        banzai::ShardTier::Replicable,
        "{}",
        probe.plan()
    );
    let spec = probe.plan().ingress_replica().unwrap().clone();
    let assignment: Vec<usize> = trace
        .iter()
        .enumerate()
        .map(|(i, p)| probe.plan().steer(i, p))
        .collect();

    for victim in 0..SHARDS {
        let ctx = format!("victim {victim}");
        let cfg = ShardConfig::new(SHARDS).with_batch(8);
        let mut sw = armed(&ingress, &egress, cfg, &FaultPlan::kill(SHARDS, victim, 5));
        let report = expect_fault(sw.run(&trace).collect(), &ctx);
        assert!(
            report.accounting.conserved(),
            "{ctx}: {}",
            report.accounting
        );

        // Survivors drained cleanly, so their snapshots are present and
        // complete; the victim's replica is gone with it.
        assert!(report.shard(victim).unwrap().state.is_none(), "{ctx}");
        let snaps: Vec<domino_ir::StateStore> = report
            .salvage
            .iter()
            .filter(|s| !s.failed)
            .map(|s| {
                s.state
                    .as_ref()
                    .expect("survivors snapshot state")
                    .0
                    .clone()
            })
            .collect();
        assert_eq!(snaps.len(), SHARDS - 1, "{ctx}");
        let merged = spec.merge_states(&snaps);

        // The surviving sub-trace is exactly the packets steered away
        // from the victim — the merged sketch must satisfy the full
        // contract (replay, overestimate, conservation, (ε, δ)) on it.
        let survivor_trace: Vec<Packet> = trace
            .iter()
            .zip(&assignment)
            .filter(|&(_, &s)| s != victim)
            .map(|(p, _)| p.clone())
            .collect();
        assert!(
            !survivor_trace.is_empty(),
            "{ctx}: steering starved survivors"
        );
        bench::sketch::verify_sketch(&spec, &survivor_trace, &merged, &ctx);
    }
}

/// A source that errors mid-stream is a **source** fault, not a worker
/// fault: the run returns a typed [`SwitchError::Fault`] whose report
/// carries a [`banzai::SourceFault`] (which packet the source died at,
/// and why), an **empty** worker-failure list, and exactly balanced
/// books — everything the source delivered before dying was drained
/// through the shards and accounted. The switch survives: no engine
/// panicked, so a follow-up run on the same instance works.
#[test]
fn source_error_mid_stream_lands_in_the_fault_report_with_closed_books() {
    use banzai::{FailAfter, GenSource};
    const SHARDS: usize = 4;
    const DIES_AT: u64 = 200;
    let (ingress, egress) = counter_pipelines();
    let cfg = ShardConfig::new(SHARDS)
        .with_capacity(CAPACITY)
        .with_batch(16);
    let mut sw = ShardedSwitch::new_slot(&ingress, &egress, cfg).unwrap();

    let gen = GenSource::new(|i| Some(Packet::new().with("flow", (i % 48) as i32).with("c", 0)));
    let report = expect_fault(
        sw.run(FailAfter::new(gen, DIES_AT, "link reset")).collect(),
        "source error",
    );

    let src = report.source.as_ref().expect("a SourceFault is attached");
    assert_eq!(src.at, DIES_AT, "fault names the packet the source died at");
    assert!(src.error.message().contains("link reset"), "{}", src.error);
    assert!(
        src.to_string()
            .contains("source failed after 200 packet(s)"),
        "{src}"
    );
    assert!(
        report.failures.is_empty(),
        "no worker failed — the *source* did"
    );

    // Books: everything delivered pre-death was offered, drained, and
    // accounted; nothing is attributed to a worker fault.
    assert_eq!(report.accounting.offered, DIES_AT);
    assert!(report.accounting.conserved(), "{}", report.accounting);
    assert_eq!(report.accounting.lost_in_fault, 0);
    let offered_per_shard: u64 = report.salvage.iter().map(|s| s.offered).sum();
    assert_eq!(offered_per_shard, DIES_AT);
    assert_eq!(
        report.merged.len() as u64,
        report.accounting.transmitted,
        "merged output is the transmitted stream"
    );

    // No engine died, so the same switch instance keeps working.
    let follow_up = trace(100, 48);
    let out = sw
        .run(&follow_up)
        .collect()
        .expect("switch must remain usable after a source fault");
    assert_eq!(out.len(), 100);
}

/// The serial switch speaks the same failure model: a mid-stream source
/// error surfaces as the same typed report — `SourceFault` attached,
/// no shard failures, books closed over what was actually pulled.
#[test]
fn serial_source_error_is_typed_and_conserved() {
    use banzai::{FailAfter, GenSource};
    let (ingress, egress) = counter_pipelines();
    let mut sw = Switch::new_slot(&ingress, &egress, CAPACITY).unwrap();

    let gen = GenSource::new(|i| Some(Packet::new().with("flow", (i % 7) as i32).with("c", 0)));
    let report = expect_fault(
        sw.run(FailAfter::new(gen, 33, "fiber cut")).collect(),
        "serial source error",
    );
    let src = report.source.as_ref().expect("a SourceFault is attached");
    assert_eq!(src.at, 33);
    assert!(src.error.message().contains("fiber cut"), "{}", src.error);
    assert!(report.failures.is_empty());
    assert_eq!(report.accounting.offered, 33);
    assert!(report.accounting.conserved(), "{}", report.accounting);
}
