//! Recursive-descent parser for Domino.
//!
//! The grammar is a small subset of C (Table 1 of the paper):
//!
//! ```text
//! program     := (define | struct | global | transaction)*
//! define      := '#define' IDENT const-expr
//! struct      := 'struct' IDENT '{' ('int' IDENT ';')* '}' ';'
//! global      := 'int' IDENT ('[' expr ']')? ('=' init)? ';'
//! init        := expr | '{' expr '}'
//! transaction := 'void' IDENT '(' 'struct' IDENT IDENT ')' block
//! block       := '{' stmt* '}'
//! stmt        := assign ';' | if | block
//! if          := 'if' '(' expr ')' stmt ('else' stmt)?
//! assign      := lvalue ('=' | '+=' | '-=') expr | lvalue ('++' | '--')
//! ```
//!
//! Compound assignments and increments are desugared during parsing, so the
//! AST only ever contains plain assignments. Banned C constructs produce
//! targeted diagnostics referencing the paper's Table 1.

use crate::ast::*;
use crate::diag::{Diagnostic, Result, Stage};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a complete Domino program (defines, packet struct, state
/// declarations, and exactly one packet transaction).
pub fn parse(source: &str) -> Result<Program> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.program()
}

/// Parses a standalone expression (used for transaction *guards*, §3.3).
pub fn parse_expr(source: &str) -> Result<Expr> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect(TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(self.err_here(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek_kind().describe()
            )))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span)> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok((name, t.span))
            }
            other => Err(self.err_here(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn err_here(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Stage::Parse, msg, self.peek().span)
    }

    /// Produces the targeted Table 1 diagnostic for a banned keyword.
    fn banned_diag(&self, kw: &str) -> Diagnostic {
        let reason = match kw {
            "for" | "while" | "do" => {
                "iteration is not allowed in Domino (Table 1): loops have \
                 unbounded cycle counts and cannot run at line rate"
            }
            "goto" | "break" | "continue" => {
                "unstructured control flow is not allowed in Domino (Table 1)"
            }
            "return" => {
                "`return` is not allowed: a packet transaction always runs to \
                 completion (use nested conditionals instead)"
            }
            _ => "this C keyword is not part of the Domino language (Table 1)",
        };
        self.err_here(format!("`{kw}`: {reason}"))
    }

    // ------------------------------------------------------------------
    // Items
    // ------------------------------------------------------------------

    fn program(&mut self) -> Result<Program> {
        let mut defines = Vec::new();
        let mut structs = Vec::new();
        let mut globals = Vec::new();
        let mut transaction: Option<Transaction> = None;

        loop {
            match self.peek_kind().clone() {
                TokenKind::Eof => break,
                TokenKind::HashDefine => defines.push(self.define()?),
                TokenKind::KwStruct => structs.push(self.struct_decl()?),
                TokenKind::KwInt => globals.push(self.global_decl()?),
                TokenKind::KwVoid => {
                    let t = self.transaction()?;
                    if let Some(prev) = &transaction {
                        return Err(Diagnostic::new(
                            Stage::Parse,
                            format!(
                                "multiple packet transactions (`{}` and `{}`): a Domino \
                                 program contains exactly one; compose several with the \
                                 policy API (§3.4)",
                                prev.name, t.name
                            ),
                            t.span,
                        ));
                    }
                    transaction = Some(t);
                }
                TokenKind::KwBanned(kw) => return Err(self.banned_diag(kw)),
                other => {
                    return Err(self.err_here(format!(
                        "expected a declaration or transaction, found {}",
                        other.describe()
                    )))
                }
            }
        }

        let transaction = transaction.ok_or_else(|| {
            Diagnostic::global(
                Stage::Parse,
                "program has no packet transaction (`void f(struct P pkt) {...}`)",
            )
        })?;
        Ok(Program {
            defines,
            structs,
            globals,
            transaction,
        })
    }

    fn define(&mut self) -> Result<Define> {
        let start = self.expect(TokenKind::HashDefine)?.span;
        let (name, _) = self.expect_ident("macro name after #define")?;
        let value = self.expr()?;
        let span = start.join(value.span());
        Ok(Define { name, value, span })
    }

    fn struct_decl(&mut self) -> Result<StructDecl> {
        let start = self.expect(TokenKind::KwStruct)?.span;
        let (name, _) = self.expect_ident("struct name")?;
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            self.expect(TokenKind::KwInt)?;
            self.reject_pointer()?;
            let (fname, fspan) = self.expect_ident("field name")?;
            if self.at(&TokenKind::LBracket) {
                return Err(self.err_here("packet fields must be scalar ints"));
            }
            self.expect(TokenKind::Semi)?;
            fields.push((fname, fspan));
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        self.expect(TokenKind::Semi)?;
        Ok(StructDecl {
            name,
            fields,
            span: start.join(end),
        })
    }

    fn global_decl(&mut self) -> Result<GlobalDecl> {
        let start = self.expect(TokenKind::KwInt)?.span;
        self.reject_pointer()?;
        let (name, _) = self.expect_ident("state variable name")?;
        let size = if self.eat(&TokenKind::LBracket) {
            let e = self.expr()?;
            self.expect(TokenKind::RBracket)?;
            Some(e)
        } else {
            None
        };
        let init = if self.eat(&TokenKind::Assign) {
            if self.eat(&TokenKind::LBrace) {
                let e = self.expr()?;
                self.expect(TokenKind::RBrace)?;
                Some(e)
            } else {
                Some(self.expr()?)
            }
        } else {
            None
        };
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(GlobalDecl {
            name,
            size,
            init,
            span: start.join(end),
        })
    }

    fn reject_pointer(&self) -> Result<()> {
        if self.at(&TokenKind::Star) {
            return Err(self.err_here(
                "pointers are not allowed in Domino (Table 1): all state is \
                 named registers or arrays",
            ));
        }
        Ok(())
    }

    fn transaction(&mut self) -> Result<Transaction> {
        let start = self.expect(TokenKind::KwVoid)?.span;
        let (name, _) = self.expect_ident("transaction name")?;
        self.expect(TokenKind::LParen)?;
        self.expect(TokenKind::KwStruct)?;
        let (struct_name, _) = self.expect_ident("packet struct name")?;
        self.reject_pointer()?;
        let (param, _) = self.expect_ident("packet parameter name")?;
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        let span = start; // body spans are on statements
        Ok(Transaction {
            name,
            struct_name,
            param,
            body,
            span,
        })
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(self.err_here("unterminated block: expected `}`"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(stmts)
    }

    /// A statement position: `if`, a nested block, or an assignment.
    fn stmt(&mut self) -> Result<Stmt> {
        match self.peek_kind().clone() {
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwBanned(kw) => Err(self.banned_diag(kw)),
            TokenKind::KwInt => Err(self.err_here(
                "local variable declarations are not allowed inside a packet \
                 transaction: use a packet field as a temporary",
            )),
            _ => {
                let s = self.assign_stmt()?;
                Ok(s)
            }
        }
    }

    /// One arm of an `if`: either a braced block or a single statement.
    fn arm(&mut self) -> Result<Vec<Stmt>> {
        if self.at(&TokenKind::LBrace) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        let start = self.expect(TokenKind::KwIf)?.span;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_branch = self.arm()?;
        let else_branch = if self.eat(&TokenKind::KwElse) {
            if self.at(&TokenKind::KwIf) {
                // `else if` chains parse as a single-statement else arm.
                vec![self.if_stmt()?]
            } else {
                self.arm()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
            span: start,
        })
    }

    fn assign_stmt(&mut self) -> Result<Stmt> {
        let lhs = self.lvalue()?;
        let lspan = lhs.span();
        let lhs_as_expr = || -> Expr {
            match &lhs {
                LValue::Field(b, f, s) => Expr::Field(b.clone(), f.clone(), *s),
                LValue::Scalar(n, s) => Expr::Ident(n.clone(), *s),
                LValue::Array(n, i, s) => Expr::Index(n.clone(), i.clone(), *s),
            }
        };
        let rhs = match self.peek_kind().clone() {
            TokenKind::Assign => {
                self.bump();
                self.expr()?
            }
            TokenKind::PlusAssign => {
                self.bump();
                let r = self.expr()?;
                let s = lspan.join(r.span());
                Expr::Binary(BinOp::Add, Box::new(lhs_as_expr()), Box::new(r), s)
            }
            TokenKind::MinusAssign => {
                self.bump();
                let r = self.expr()?;
                let s = lspan.join(r.span());
                Expr::Binary(BinOp::Sub, Box::new(lhs_as_expr()), Box::new(r), s)
            }
            TokenKind::PlusPlus => {
                self.bump();
                Expr::Binary(
                    BinOp::Add,
                    Box::new(lhs_as_expr()),
                    Box::new(Expr::Int(1, lspan)),
                    lspan,
                )
            }
            TokenKind::MinusMinus => {
                self.bump();
                Expr::Binary(
                    BinOp::Sub,
                    Box::new(lhs_as_expr()),
                    Box::new(Expr::Int(1, lspan)),
                    lspan,
                )
            }
            other => {
                return Err(self.err_here(format!(
                    "expected an assignment operator after lvalue, found {}",
                    other.describe()
                )))
            }
        };
        let span = lspan.join(rhs.span());
        self.expect(TokenKind::Semi)?;
        Ok(Stmt::Assign { lhs, rhs, span })
    }

    fn lvalue(&mut self) -> Result<LValue> {
        let (name, span) = self.expect_ident("an lvalue (packet field or state variable)")?;
        if self.eat(&TokenKind::Dot) {
            let (field, fspan) = self.expect_ident("packet field name")?;
            Ok(LValue::Field(name, field, span.join(fspan)))
        } else if self.eat(&TokenKind::LBracket) {
            let idx = self.expr()?;
            let end = self.expect(TokenKind::RBracket)?.span;
            Ok(LValue::Array(name, Box::new(idx), span.join(end)))
        } else {
            Ok(LValue::Scalar(name, span))
        }
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing, C precedence)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr> {
        let cond = self.logical_or()?;
        if self.eat(&TokenKind::Question) {
            let then = self.expr()?;
            self.expect(TokenKind::Colon)?;
            let els = self.ternary()?;
            let span = cond.span().join(els.span());
            Ok(Expr::Ternary(
                Box::new(cond),
                Box::new(then),
                Box::new(els),
                span,
            ))
        } else {
            Ok(cond)
        }
    }

    fn binary_level(
        &mut self,
        next: fn(&mut Self) -> Result<Expr>,
        ops: &[(TokenKind, BinOp)],
    ) -> Result<Expr> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in ops {
                if self.at(tok) {
                    self.bump();
                    let rhs = next(self)?;
                    let span = lhs.span().join(rhs.span());
                    lhs = Expr::Binary(*op, Box::new(lhs), Box::new(rhs), span);
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn logical_or(&mut self) -> Result<Expr> {
        self.binary_level(Self::logical_and, &[(TokenKind::PipePipe, BinOp::Or)])
    }

    fn logical_and(&mut self) -> Result<Expr> {
        self.binary_level(Self::bit_or, &[(TokenKind::AmpAmp, BinOp::And)])
    }

    fn bit_or(&mut self) -> Result<Expr> {
        self.binary_level(Self::bit_xor, &[(TokenKind::Pipe, BinOp::BitOr)])
    }

    fn bit_xor(&mut self) -> Result<Expr> {
        self.binary_level(Self::bit_and, &[(TokenKind::Caret, BinOp::BitXor)])
    }

    fn bit_and(&mut self) -> Result<Expr> {
        self.binary_level(Self::equality, &[(TokenKind::Amp, BinOp::BitAnd)])
    }

    fn equality(&mut self) -> Result<Expr> {
        self.binary_level(
            Self::relational,
            &[(TokenKind::EqEq, BinOp::Eq), (TokenKind::Ne, BinOp::Ne)],
        )
    }

    fn relational(&mut self) -> Result<Expr> {
        self.binary_level(
            Self::shift,
            &[
                (TokenKind::Le, BinOp::Le),
                (TokenKind::Ge, BinOp::Ge),
                (TokenKind::Lt, BinOp::Lt),
                (TokenKind::Gt, BinOp::Gt),
            ],
        )
    }

    fn shift(&mut self) -> Result<Expr> {
        self.binary_level(
            Self::additive,
            &[(TokenKind::Shl, BinOp::Shl), (TokenKind::Shr, BinOp::Shr)],
        )
    }

    fn additive(&mut self) -> Result<Expr> {
        self.binary_level(
            Self::multiplicative,
            &[
                (TokenKind::Plus, BinOp::Add),
                (TokenKind::Minus, BinOp::Sub),
            ],
        )
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        self.binary_level(
            Self::unary,
            &[
                (TokenKind::Star, BinOp::Mul),
                (TokenKind::Slash, BinOp::Div),
                (TokenKind::Percent, BinOp::Mod),
            ],
        )
    }

    fn unary(&mut self) -> Result<Expr> {
        let span = self.peek().span;
        match self.peek_kind().clone() {
            TokenKind::Minus => {
                self.bump();
                let e = self.unary()?;
                let s = span.join(e.span());
                Ok(Expr::Unary(UnOp::Neg, Box::new(e), s))
            }
            TokenKind::Bang => {
                self.bump();
                let e = self.unary()?;
                let s = span.join(e.span());
                Ok(Expr::Unary(UnOp::Not, Box::new(e), s))
            }
            TokenKind::Tilde => {
                self.bump();
                let e = self.unary()?;
                let s = span.join(e.span());
                Ok(Expr::Unary(UnOp::BitNot, Box::new(e), s))
            }
            TokenKind::Amp => Err(self.err_here(
                "address-of is not allowed in Domino (Table 1): pointers do \
                 not exist in the language",
            )),
            TokenKind::Star => {
                Err(self.err_here("pointer dereference is not allowed in Domino (Table 1)"))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        let span = self.peek().span;
        match self.peek_kind().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v as i32, span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::Dot) {
                    let (field, fspan) = self.expect_ident("packet field name")?;
                    Ok(Expr::Field(name, field, span.join(fspan)))
                } else if self.eat(&TokenKind::LBracket) {
                    let idx = self.expr()?;
                    let end = self.expect(TokenKind::RBracket)?.span;
                    Ok(Expr::Index(name, Box::new(idx), span.join(end)))
                } else if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(TokenKind::RParen)?.span;
                    Ok(Expr::Call(name, args, span.join(end)))
                } else {
                    Ok(Expr::Ident(name, span))
                }
            }
            TokenKind::KwBanned(kw) => Err(self.banned_diag(kw)),
            other => Err(self.err_here(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLOWLET_SRC: &str = r#"
#define NUM_FLOWLETS 8000
#define THRESHOLD 5
#define NUM_HOPS 10

struct Packet {
  int sport;
  int dport;
  int new_hop;
  int arrival;
  int next_hop;
  int id;
};

int last_time[NUM_FLOWLETS] = {0};
int saved_hop[NUM_FLOWLETS] = {0};

void flowlet(struct Packet pkt) {
  pkt.new_hop = hash3(pkt.sport, pkt.dport, pkt.arrival) % NUM_HOPS;
  pkt.id = hash2(pkt.sport, pkt.dport) % NUM_FLOWLETS;
  if (pkt.arrival - last_time[pkt.id] > THRESHOLD) {
    saved_hop[pkt.id] = pkt.new_hop;
  }
  last_time[pkt.id] = pkt.arrival;
  pkt.next_hop = saved_hop[pkt.id];
}
"#;

    #[test]
    fn parses_flowlet_program() {
        let p = parse(FLOWLET_SRC).unwrap();
        assert_eq!(p.defines.len(), 3);
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].fields.len(), 6);
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.transaction.name, "flowlet");
        assert_eq!(p.transaction.param, "pkt");
        assert_eq!(p.transaction.body.len(), 5);
    }

    #[test]
    fn precedence_binds_correctly() {
        // a - b > c must parse as (a - b) > c, as in Fig 3a line 27.
        let p = parse(
            "struct P { int a; int b; int c; int r; };\n\
             void f(struct P pkt) { pkt.r = pkt.a - pkt.b > pkt.c; }",
        )
        .unwrap();
        let Stmt::Assign { rhs, .. } = &p.transaction.body[0] else {
            panic!()
        };
        assert_eq!(rhs.to_string(), "((pkt.a - pkt.b) > pkt.c)");
    }

    #[test]
    fn ternary_is_right_associative() {
        let e = parse_expr("a ? b : c ? d : e").unwrap();
        assert_eq!(e.to_string(), "(a ? b : (c ? d : e))");
    }

    #[test]
    fn desugars_compound_assignment() {
        let p = parse(
            "struct P { int x; };\nint c = 0;\n\
             void f(struct P pkt) { c += pkt.x; }",
        )
        .unwrap();
        let Stmt::Assign { lhs, rhs, .. } = &p.transaction.body[0] else {
            panic!()
        };
        assert!(matches!(lhs, LValue::Scalar(n, _) if n == "c"));
        assert_eq!(rhs.to_string(), "(c + pkt.x)");
    }

    #[test]
    fn desugars_increment() {
        let p = parse("struct P { int x; };\nint c = 0;\nvoid f(struct P pkt) { c++; }").unwrap();
        let Stmt::Assign { rhs, .. } = &p.transaction.body[0] else {
            panic!()
        };
        assert_eq!(rhs.to_string(), "(c + 1)");
    }

    #[test]
    fn rejects_while_loop_with_table1_message() {
        let err =
            parse("struct P { int x; };\nvoid f(struct P pkt) { while (pkt.x) { pkt.x = 0; } }")
                .unwrap_err();
        assert!(err.message.contains("iteration"), "{}", err.message);
        assert!(err.message.contains("Table 1"), "{}", err.message);
    }

    #[test]
    fn rejects_for_goto_break_continue_return() {
        for (kw, frag) in [
            ("for", "for (;;) {}"),
            ("goto", "goto done;"),
            ("break", "break;"),
            ("continue", "continue;"),
            ("return", "return;"),
        ] {
            let src = format!("struct P {{ int x; }};\nvoid f(struct P pkt) {{ {frag} }}");
            let err = parse(&src).unwrap_err();
            assert!(err.message.contains(kw), "{kw}: {}", err.message);
        }
    }

    #[test]
    fn rejects_pointers() {
        let err = parse("int *x;\nstruct P { int a; };\nvoid f(struct P pkt) {}").unwrap_err();
        assert!(err.message.contains("pointer"), "{}", err.message);
        let err2 =
            parse("struct P { int a; };\nvoid f(struct P pkt) { pkt.a = &pkt; }").unwrap_err();
        assert!(err2.message.contains("address-of"), "{}", err2.message);
    }

    #[test]
    fn rejects_local_declarations() {
        let err = parse("struct P { int a; };\nvoid f(struct P pkt) { int tmp = 0; }").unwrap_err();
        assert!(err.message.contains("local variable"), "{}", err.message);
    }

    #[test]
    fn rejects_multiple_transactions() {
        let err = parse("struct P { int a; };\nvoid f(struct P pkt) {}\nvoid g(struct P pkt) {}")
            .unwrap_err();
        assert!(err.message.contains("exactly one"), "{}", err.message);
    }

    #[test]
    fn requires_a_transaction() {
        let err = parse("struct P { int a; };").unwrap_err();
        assert!(
            err.message.contains("no packet transaction"),
            "{}",
            err.message
        );
    }

    #[test]
    fn else_if_chain() {
        let p = parse(
            "struct P { int a; int b; };\nint x = 0;\n\
             void f(struct P pkt) {\n\
               if (pkt.a > 0) { x = 1; } else if (pkt.b > 0) { x = 2; } else { x = 3; }\n\
             }",
        )
        .unwrap();
        let Stmt::If { else_branch, .. } = &p.transaction.body[0] else {
            panic!()
        };
        assert_eq!(else_branch.len(), 1);
        assert!(matches!(&else_branch[0], Stmt::If { .. }));
    }

    #[test]
    fn if_without_braces() {
        let p = parse(
            "struct P { int a; };\nint x = 0;\n\
             void f(struct P pkt) { if (pkt.a) x = 1; }",
        )
        .unwrap();
        let Stmt::If {
            then_branch,
            else_branch,
            ..
        } = &p.transaction.body[0]
        else {
            panic!()
        };
        assert_eq!(then_branch.len(), 1);
        assert!(else_branch.is_empty());
    }

    #[test]
    fn array_global_with_initializer() {
        let p =
            parse("#define N 4\nint a[N] = {0};\nstruct P { int x; };\nvoid f(struct P pkt) {}")
                .unwrap();
        let g = &p.globals[0];
        assert_eq!(g.name, "a");
        assert!(g.size.is_some());
        assert!(matches!(g.init, Some(Expr::Int(0, _))));
    }

    #[test]
    fn call_with_no_args_and_many_args() {
        let e = parse_expr("now()").unwrap();
        assert!(matches!(e, Expr::Call(ref n, ref a, _) if n == "now" && a.is_empty()));
        let e = parse_expr("hash3(a, b, c)").unwrap();
        assert!(matches!(e, Expr::Call(ref n, ref a, _) if n == "hash3" && a.len() == 3));
    }

    #[test]
    fn unary_operators_parse() {
        assert_eq!(parse_expr("-a + b").unwrap().to_string(), "(-(a) + b)");
        assert_eq!(parse_expr("!a").unwrap().to_string(), "!(a)");
        assert_eq!(parse_expr("~a & b").unwrap().to_string(), "(~(a) & b)");
    }

    #[test]
    fn logical_vs_bitwise_precedence() {
        assert_eq!(
            parse_expr("a & b && c | d").unwrap().to_string(),
            "((a & b) && (c | d))"
        );
    }

    #[test]
    fn reports_missing_semicolon() {
        let err = parse("struct P { int a; };\nvoid f(struct P pkt) { pkt.a = 1 }").unwrap_err();
        assert!(err.message.contains("`;`"), "{}", err.message);
    }

    #[test]
    fn unterminated_block_reports_cleanly() {
        let err = parse("struct P { int a; };\nvoid f(struct P pkt) { pkt.a = 1;").unwrap_err();
        assert!(
            err.message.contains("unterminated") || err.message.contains("`}`"),
            "{}",
            err.message
        );
    }
}
