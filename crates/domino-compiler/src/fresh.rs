//! Fresh-name generation for compiler-introduced packet fields.
//!
//! Compiler temporaries (branch conditions, SSA versions, TAC temps) must
//! not collide with user-declared fields or with each other. A
//! [`FreshNames`] tracks every name in use and hands out unique ones.

use std::collections::BTreeSet;

/// A pool of used names handing out fresh, collision-free ones.
#[derive(Debug, Clone, Default)]
pub struct FreshNames {
    used: BTreeSet<String>,
}

impl FreshNames {
    /// Creates a pool pre-seeded with every name already in use.
    pub fn new(existing: impl IntoIterator<Item = String>) -> Self {
        FreshNames {
            used: existing.into_iter().collect(),
        }
    }

    /// Marks a name as used.
    pub fn reserve(&mut self, name: &str) {
        self.used.insert(name.to_string());
    }

    /// True if the name is already taken.
    pub fn is_used(&self, name: &str) -> bool {
        self.used.contains(name)
    }

    /// Returns `base` itself if free, else `base`, `base_1`, `base_2`, ...
    /// The returned name is recorded as used.
    pub fn fresh(&mut self, base: &str) -> String {
        if self.used.insert(base.to_string()) {
            return base.to_string();
        }
        for i in 1.. {
            let candidate = format!("{base}_{i}");
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
        unreachable!("u64 space exhausted")
    }

    /// Returns `base0`, `base1`, ... skipping collisions (used for SSA
    /// version numbering, matching the paper's `pkt.id0` style).
    pub fn fresh_numbered(&mut self, base: &str, start: u32) -> (String, u32) {
        let mut n = start;
        loop {
            let candidate = format!("{base}{n}");
            if self.used.insert(candidate.clone()) {
                return (candidate, n + 1);
            }
            n += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_avoids_existing() {
        let mut f = FreshNames::new(["tmp".to_string()]);
        assert_eq!(f.fresh("tmp"), "tmp_1");
        assert_eq!(f.fresh("tmp"), "tmp_2");
        assert_eq!(f.fresh("other"), "other");
    }

    #[test]
    fn numbered_versions_skip_collisions() {
        let mut f = FreshNames::new(["id0".to_string()]);
        let (name, next) = f.fresh_numbered("id", 0);
        assert_eq!(name, "id1");
        assert_eq!(next, 2);
        let (name2, _) = f.fresh_numbered("id", next);
        assert_eq!(name2, "id2");
    }

    #[test]
    fn reserve_and_query() {
        let mut f = FreshNames::default();
        assert!(!f.is_used("x"));
        f.reserve("x");
        assert!(f.is_used("x"));
        assert_eq!(f.fresh("x"), "x_1");
    }
}
