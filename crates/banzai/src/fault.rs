//! Deterministic fault injection for the execution stack.
//!
//! Chaos testing a supervised switch needs faults that are (a) *inside*
//! the pipeline engine — so the supervisor sees exactly what a real
//! engine bug or hardware fault would look like — and (b) *deterministic*
//! — so a failing run replays bit-identically under a seed. This module
//! provides both: [`FaultyEngine`] wraps any [`PipelineEngine`] and fires
//! scheduled [`FaultSpec`]s (panic, stall, bit-flip) at exact per-engine
//! packet counts, and [`FaultPlan`] derives those schedules from a seed.
//!
//! Injection is strictly constructor-driven (no globals, no thread-locals,
//! no environment variables): an engine built through the ordinary
//! [`PipelineEngine::build`] hook is **fault-free**, which is exactly what
//! the sharded supervisor relies on when it rebuilds a dead shard — the
//! replacement engine must not re-fire the fault that killed its
//! predecessor.

use crate::error::SwitchError;
use crate::machine::AtomPipeline;
use crate::switch::PipelineEngine;
use domino_ir::layout::mix64;
use domino_ir::{Packet, StateStore};
use std::time::Duration;

/// Marker string carried by every injected panic payload, so supervisors
/// and tests can distinguish scheduled faults from genuine engine bugs.
pub const INJECTED_PANIC_MARKER: &str = "injected fault";

/// What a scheduled fault does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic (unwinds out of `process`), simulating an engine crash
    /// mid-packet. The payload names the packet count and contains
    /// [`INJECTED_PANIC_MARKER`].
    Panic,
    /// Sleep this many milliseconds before processing the packet,
    /// simulating a wedged worker (drive it past the supervisor's
    /// watchdog) or a slow one (drive ring backpressure below it).
    Stall {
        /// How long to stall, in milliseconds.
        ms: u64,
    },
    /// Flip one bit of a packet field before the inner engine sees it,
    /// simulating silent data corruption (absent fields read as 0, so the
    /// flip materializes the field).
    BitFlip {
        /// The packet field to corrupt.
        field: String,
        /// Which bit (0-based, masked to 0..32) to flip.
        bit: u32,
    },
}

/// One scheduled fault: fires when this engine instance has processed
/// exactly `at_packet` packets (0-based — `at_packet: 0` fires on the
/// first packet).
///
/// The count is **per engine instance**, not global: wrapped around a
/// shard's ingress engine, `at_packet: N` means the `N`-th packet steered
/// to that shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// The engine-local processed-packet count at which the fault fires.
    pub at_packet: u64,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// A panic at the given engine-local packet count.
    pub fn panic_at(at_packet: u64) -> FaultSpec {
        FaultSpec {
            at_packet,
            kind: FaultKind::Panic,
        }
    }

    /// A stall of `ms` milliseconds at the given packet count.
    pub fn stall_at(at_packet: u64, ms: u64) -> FaultSpec {
        FaultSpec {
            at_packet,
            kind: FaultKind::Stall { ms },
        }
    }

    /// A single-bit corruption of `field` at the given packet count.
    pub fn bit_flip_at(at_packet: u64, field: &str, bit: u32) -> FaultSpec {
        FaultSpec {
            at_packet,
            kind: FaultKind::BitFlip {
                field: field.to_string(),
                bit,
            },
        }
    }
}

/// A per-shard fault schedule, the unit the chaos harness hands to
/// [`ShardedSwitch::new_with`](crate::shard::ShardedSwitch::new_with).
///
/// Plans are plain data: build one manually ([`FaultPlan::kill`],
/// [`FaultPlan::push`]) or derive one from a seed
/// ([`FaultPlan::seeded`]) so a whole chaos campaign replays from a
/// single number.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    per_shard: Vec<Vec<FaultSpec>>,
}

impl FaultPlan {
    /// A plan with no faults for any of `shards` shards.
    pub fn none(shards: usize) -> FaultPlan {
        FaultPlan {
            per_shard: vec![Vec::new(); shards],
        }
    }

    /// Kill exactly one victim shard: panic when it has processed
    /// `at_packet` packets.
    pub fn kill(shards: usize, victim: usize, at_packet: u64) -> FaultPlan {
        let mut plan = FaultPlan::none(shards);
        plan.push(victim, FaultSpec::panic_at(at_packet));
        plan
    }

    /// Derives a one-victim panic schedule from a seed: the victim shard
    /// and its fault index are hashed from `seed` (victim in
    /// `0..shards`, packet count in `0..horizon`). The same seed always
    /// produces the same schedule.
    pub fn seeded(seed: u64, shards: usize, horizon: u64) -> FaultPlan {
        let shards = shards.max(1);
        let horizon = horizon.max(1);
        let victim = (mix64(seed ^ 0x5eed_fa17_0001) % shards as u64) as usize;
        let at_packet = mix64(seed.wrapping_add(0x9e37_79b9)) % horizon;
        FaultPlan::kill(shards, victim, at_packet)
    }

    /// Adds a fault to one shard's schedule (growing the plan if needed).
    pub fn push(&mut self, shard: usize, fault: FaultSpec) {
        if shard >= self.per_shard.len() {
            self.per_shard.resize_with(shard + 1, Vec::new);
        }
        self.per_shard[shard].push(fault);
    }

    /// The schedule for one shard (empty if the plan never mentions it).
    pub fn faults_for(&self, shard: usize) -> &[FaultSpec] {
        self.per_shard.get(shard).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of shards this plan covers.
    pub fn shards(&self) -> usize {
        self.per_shard.len()
    }
}

/// Runs `f` with the global panic hook filtered: panics whose payload
/// carries [`INJECTED_PANIC_MARKER`] are silenced (chaos harnesses fire
/// them *by design*, and the default hook's backtrace spam would drown
/// their reports), while every other panic — a genuine bug, a failed
/// harness assertion — still reaches the previous hook. The prior hook is
/// restored afterwards.
///
/// The panic hook is process-global: the filter applies to every thread
/// that panics while `f` runs. Use from single-purpose binaries (the
/// bench harness), not from parallel test suites.
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::sync::Arc::new(std::panic::take_hook());
    let filter_prev = prev.clone();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let injected = payload
            .downcast_ref::<String>()
            .map(|s| s.as_str())
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .is_some_and(|s| s.contains(INJECTED_PANIC_MARKER));
        if !injected {
            (*filter_prev)(info);
        }
    }));
    let out = f();
    drop(std::panic::take_hook());
    std::panic::set_hook(Box::new(move |info| (*prev)(info)));
    out
}

/// A [`PipelineEngine`] wrapper that injects scheduled faults, otherwise
/// delegating every call to the wrapped engine.
///
/// Built through the ordinary [`PipelineEngine::build`] hook it carries
/// **no** faults (so supervisor rebuilds are clean); faults are attached
/// only via [`FaultyEngine::with_faults`] / [`FaultyEngine::attach`].
#[derive(Debug, Clone)]
pub struct FaultyEngine<E: PipelineEngine> {
    inner: E,
    faults: Vec<FaultSpec>,
    processed: u64,
}

impl<E: PipelineEngine> FaultyEngine<E> {
    /// Builds the inner engine for `pipeline` and attaches a fault
    /// schedule to it.
    pub fn with_faults(
        pipeline: &AtomPipeline,
        faults: Vec<FaultSpec>,
    ) -> Result<FaultyEngine<E>, SwitchError> {
        Ok(FaultyEngine {
            inner: E::build(pipeline)?,
            faults,
            processed: 0,
        })
    }

    /// Wraps an already-built engine with a fault schedule.
    pub fn attach(inner: E, faults: Vec<FaultSpec>) -> FaultyEngine<E> {
        FaultyEngine {
            inner,
            faults,
            processed: 0,
        }
    }

    /// Packets this instance has processed (the clock faults fire on).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The attached schedule.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }
}

impl<E: PipelineEngine> PipelineEngine for FaultyEngine<E> {
    /// Fault-free: engines built through the generic hook carry no
    /// schedule. The sharded supervisor rebuilds dead shards through this
    /// path, so a replacement engine never re-fires its predecessor's
    /// fault.
    fn build(pipeline: &AtomPipeline) -> Result<FaultyEngine<E>, SwitchError> {
        Ok(FaultyEngine {
            inner: E::build(pipeline)?,
            faults: Vec::new(),
            processed: 0,
        })
    }

    fn process(&mut self, mut pkt: Packet) -> Packet {
        let n = self.processed;
        // Non-panic faults apply in schedule order; a panic ends the
        // packet (and, under supervision, the worker).
        for f in &self.faults {
            if f.at_packet != n {
                continue;
            }
            match &f.kind {
                FaultKind::Stall { ms } => std::thread::sleep(Duration::from_millis(*ms)),
                FaultKind::BitFlip { field, bit } => {
                    let old = pkt.get_or_zero(field);
                    pkt.set(field, old ^ (1i32 << (bit % 32)));
                }
                FaultKind::Panic => {
                    panic!("{INJECTED_PANIC_MARKER}: scheduled panic at engine packet {n}")
                }
            }
        }
        self.processed = n + 1;
        self.inner.process(pkt)
    }

    fn export_state(&self) -> StateStore {
        self.inner.export_state()
    }

    fn import_state(&mut self, snapshot: &StateStore) {
        self.inner.import_state(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn passthrough() -> AtomPipeline {
        AtomPipeline::passthrough("p")
    }

    #[test]
    fn build_hook_is_fault_free() {
        let eng: FaultyEngine<Machine> = FaultyEngine::build(&passthrough()).unwrap();
        assert!(eng.faults().is_empty());
    }

    #[test]
    fn panic_fires_at_exact_packet_count_with_marker() {
        let mut eng: FaultyEngine<Machine> =
            FaultyEngine::with_faults(&passthrough(), vec![FaultSpec::panic_at(2)]).unwrap();
        eng.process(Packet::new());
        eng.process(Packet::new());
        let err = catch_unwind(AssertUnwindSafe(|| eng.process(Packet::new()))).unwrap_err();
        let payload = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string>".into());
        assert!(payload.contains(INJECTED_PANIC_MARKER), "{payload}");
        assert!(payload.contains("packet 2"), "{payload}");
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_packet() {
        let mut eng: FaultyEngine<Machine> =
            FaultyEngine::with_faults(&passthrough(), vec![FaultSpec::bit_flip_at(1, "x", 3)])
                .unwrap();
        let a = eng.process(Packet::new().with("x", 0));
        let b = eng.process(Packet::new().with("x", 0));
        let c = eng.process(Packet::new().with("x", 0));
        assert_eq!(a.get("x"), Some(0));
        assert_eq!(b.get("x"), Some(8)); // bit 3 flipped
        assert_eq!(c.get("x"), Some(0));
    }

    #[test]
    fn stall_delays_but_preserves_output() {
        let mut eng: FaultyEngine<Machine> =
            FaultyEngine::with_faults(&passthrough(), vec![FaultSpec::stall_at(0, 1)]).unwrap();
        let out = eng.process(Packet::new().with("x", 7));
        assert_eq!(out.get("x"), Some(7));
        assert_eq!(eng.processed(), 1);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        for seed in 0..32u64 {
            let a = FaultPlan::seeded(seed, 4, 100);
            let b = FaultPlan::seeded(seed, 4, 100);
            assert_eq!(a, b);
            let victims: Vec<usize> = (0..4).filter(|&s| !a.faults_for(s).is_empty()).collect();
            assert_eq!(victims.len(), 1, "seed {seed}: exactly one victim");
            let spec = &a.faults_for(victims[0])[0];
            assert!(spec.at_packet < 100);
            assert_eq!(spec.kind, FaultKind::Panic);
        }
        // Different seeds do spread across shards.
        let distinct: std::collections::HashSet<usize> = (0..32u64)
            .map(|seed| {
                let p = FaultPlan::seeded(seed, 4, 100);
                (0..4).find(|&s| !p.faults_for(s).is_empty()).unwrap()
            })
            .collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn plan_push_grows_and_faults_for_is_total() {
        let mut p = FaultPlan::none(1);
        p.push(3, FaultSpec::stall_at(5, 10));
        assert_eq!(p.shards(), 4);
        assert!(p.faults_for(0).is_empty());
        assert!(p.faults_for(99).is_empty());
        assert_eq!(p.faults_for(3).len(), 1);
    }
}
