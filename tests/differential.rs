//! End-to-end differential testing: for every Table 4 algorithm, the
//! compiled Banzai pipeline (on both execution engines), the sequential
//! reference interpreter, and the independent Rust reference
//! implementation must agree packet-for-packet on realistic workloads.
//!
//! This is the paper's core guarantee made executable: a packet
//! transaction's compiled pipeline is observably identical to serial
//! execution (§3), and our Domino sources faithfully implement the
//! published algorithms. The four ways:
//!
//! 1. map-based [`Machine`] (the semantic reference engine),
//! 2. the slot-compiled [`SlotMachine`] fast path,
//! 3. the sequential AST interpreter (the defining semantics),
//! 4. an independently written Rust reference implementation.

use banzai::{Machine, SlotMachine, Target};
use domino_ir::{run_ast, StateStore, StateValue};

const TRACE_LEN: usize = 800;
const SEED: u64 = 0x000D_0771_2016;

/// Compiles an algorithm on the least-expressive target the paper says it
/// needs and returns a machine.
fn machine_for(a: &algorithms::Algorithm) -> Machine {
    let kind = a.paper.least_atom.expect("algorithm must map");
    let target = if a.name == "codel_lut" {
        Target::banzai_with_lut(kind)
    } else {
        Target::banzai(kind)
    };
    let pipeline =
        domino_compiler::compile(a.source, &target).unwrap_or_else(|e| panic!("{}: {e}", a.name));
    Machine::new(pipeline)
}

/// Runs the four implementations and checks the designated output fields
/// and exported state.
fn differential(a: &algorithms::Algorithm) {
    let trace = a.trace(TRACE_LEN, SEED);

    // 1. Compiled pipeline on the map-based reference engine.
    let mut machine = machine_for(a);
    let machine_out = machine.run_trace(&trace);

    // 1b. The same pipeline on the slot-compiled fast path: bit-identical
    // to the reference engine, full-packet and state-for-state.
    let mut slot = SlotMachine::compile(machine.pipeline())
        .unwrap_or_else(|e| panic!("{}: slot lowering failed: {e}", a.name));
    let slot_out = slot.run_trace(&trace);
    for (i, (m, s)) in machine_out.iter().zip(&slot_out).enumerate() {
        assert_eq!(
            m, s,
            "{}: slot fast path diverges from map engine at packet {i}",
            a.name
        );
    }
    assert_eq!(
        *machine.state(),
        slot.export_state(),
        "{}: slot fast path state diverges from map engine",
        a.name
    );

    // 2. Sequential AST interpreter (the defining semantics).
    let checked = domino_ast::parse_and_check(a.source).unwrap();
    let mut interp_state = StateStore::from_decls(&checked.state);
    let interp_out = run_ast(&checked, &mut interp_state, &trace);

    // 3. Independent Rust reference implementation.
    let mut reference = a.reference();
    let mut ref_out = Vec::with_capacity(trace.len());
    for p in &trace {
        let mut pkt = p.clone();
        reference.process(&mut pkt);
        ref_out.push(pkt);
    }

    for (i, ((m, s), r)) in machine_out
        .iter()
        .zip(&interp_out)
        .zip(&ref_out)
        .enumerate()
    {
        // Pipeline ≡ interpreter on *all* declared fields.
        let fields = checked.packet_fields.clone();
        assert_eq!(
            m.project(&fields),
            s.project(&fields),
            "{}: pipeline vs interpreter diverge at packet {i}",
            a.name
        );
        // Pipeline ≡ reference on the algorithm's output fields.
        for f in a.output_fields {
            assert_eq!(
                m.get_or_zero(f),
                r.get_or_zero(f),
                "{}: field `{f}` differs from reference at packet {i} (input {})",
                a.name,
                trace[i]
            );
        }
    }

    // State comparison: machine vs reference export.
    for (name, expected) in reference.export_state() {
        let got = machine
            .state()
            .get(&name)
            .unwrap_or_else(|| panic!("{}: machine has no state variable `{name}`", a.name));
        assert_eq!(got, &expected, "{}: state `{name}` differs", a.name);
    }

    // And machine state must equal interpreter state exactly.
    assert_eq!(
        machine.state(),
        &interp_state,
        "{}: machine vs interpreter state",
        a.name
    );
}

macro_rules! differential_test {
    ($name:ident) => {
        #[test]
        fn $name() {
            differential(&algorithms::by_name(stringify!($name)).unwrap());
        }
    };
}

differential_test!(bloom_filter);
differential_test!(heavy_hitters);
differential_test!(flowlet);
differential_test!(rcp);
differential_test!(sampled_netflow);
differential_test!(hull);
differential_test!(avq);
differential_test!(stfq);
differential_test!(dns_ttl_change);
differential_test!(conga);
differential_test!(codel_lut);

/// CoDel doesn't compile (Table 4: "Doesn't map"), but its *semantics* are
/// still defined — check the reference implementation against the
/// sequential interpreter.
#[test]
fn codel_reference_matches_interpreter() {
    let a = algorithms::by_name("codel").unwrap();
    let trace = a.trace(TRACE_LEN, SEED);
    let checked = domino_ast::parse_and_check(a.source).unwrap();
    let mut state = StateStore::from_decls(&checked.state);
    let interp_out = run_ast(&checked, &mut state, &trace);

    let mut reference = a.reference();
    for (i, p) in trace.iter().enumerate() {
        let mut pkt = p.clone();
        reference.process(&mut pkt);
        for f in a.output_fields {
            assert_eq!(
                pkt.get_or_zero(f),
                interp_out[i].get_or_zero(f),
                "codel: `{f}` at packet {i}"
            );
        }
    }
    for (name, expected) in reference.export_state() {
        match (state.get(&name).unwrap(), &expected) {
            (StateValue::Scalar(a), StateValue::Scalar(b)) => {
                assert_eq!(a, b, "codel state `{name}`")
            }
            (a, b) => assert_eq!(a, b, "codel state `{name}`"),
        }
    }
}

/// Cycle-accurate pipelined execution (packets in flight) must equal
/// serial transactional execution for every algorithm — the isolation
/// half of the packet-transaction guarantee.
#[test]
fn pipelined_equals_serial_for_all_algorithms() {
    for a in algorithms::TABLE4
        .iter()
        .filter(|a| a.paper.least_atom.is_some())
    {
        let trace = a.trace(300, SEED ^ 0x9e37);
        let mut m1 = machine_for(a);
        let mut m2 = machine_for(a);
        let serial = m1.run_trace(&trace);
        let pipelined = m2.run_trace_pipelined(&trace);
        assert_eq!(
            serial, pipelined,
            "{}: pipelining changed observable behaviour",
            a.name
        );
        assert_eq!(m1.state(), m2.state(), "{}: state diverged", a.name);

        // The guarantee holds on the fast path too: slot-compiled
        // pipelined execution equals map-based serial execution.
        let mut m3 = SlotMachine::compile(m1.pipeline()).unwrap();
        let slot_pipelined = m3.run_trace_pipelined(&trace);
        assert_eq!(
            serial, slot_pipelined,
            "{}: slot pipelining changed observable behaviour",
            a.name
        );
        assert_eq!(
            *m1.state(),
            m3.export_state(),
            "{}: slot pipelined state diverged",
            a.name
        );
    }
}

/// Every mapping algorithm compiles on the Pairs target (hierarchy
/// containment: the most expressive machine runs everything that maps).
#[test]
fn pairs_target_runs_all_mapping_algorithms() {
    let target = Target::banzai(banzai::AtomKind::Pairs);
    for a in algorithms::TABLE4
        .iter()
        .filter(|a| a.paper.least_atom.is_some())
    {
        domino_compiler::compile(a.source, &target).unwrap_or_else(|e| panic!("{}: {e}", a.name));
    }
}

/// And none of them compiles on a target *below* its least atom.
#[test]
fn below_least_atom_is_rejected() {
    use banzai::AtomKind;
    for a in algorithms::TABLE4.iter() {
        let Some(least) = a.paper.least_atom else {
            continue;
        };
        let below: Vec<AtomKind> = AtomKind::ALL.into_iter().filter(|k| *k < least).collect();
        for kind in below {
            assert!(
                domino_compiler::compile(a.source, &Target::banzai(kind)).is_err(),
                "{} unexpectedly compiled on {:?}",
                a.name,
                kind
            );
        }
    }
}
